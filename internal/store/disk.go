package store

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"factordb/internal/metrics"
	"factordb/internal/relstore"
	"factordb/internal/world"
)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// ErrSeeded is returned by Seed on a store that already holds a world.
var ErrSeeded = errors.New("store: already seeded")

// ErrNoBase marks a directory whose WAL has records but no snapshot to
// replay them onto — an incomplete store a recovery cannot trust.
var ErrNoBase = errors.New("store: wal records without a base snapshot")

const walName = "wal.log"

// DiskStore is the default Storage: one append-only wal1 log plus
// checkpointed snap1 snapshots in a flat directory. It keeps a private
// "shadow" copy of the durable world — the snapshot-plus-log state —
// which every Append advances, so checkpointing never has to reach into
// the engine: a checkpoint is a clone of the shadow dumped to disk,
// followed by a rewrite of the log that drops the now-covered prefix.
type DiskStore struct {
	opts Options
	rec  Recovery

	mu        sync.Mutex
	f         *os.File // wal handle, positioned at end of the valid prefix
	shadow    *relstore.DB
	shadowLog *world.ChangeLog
	closed    bool
	dirty     bool  // appended frames not yet fsynced
	sinceOps  int64 // appended ops since the last checkpoint
	lastErr   string

	// lastFsyncNS is the fsync share of the most recent Append (0 unless
	// the policy synced inline) — the serve.FsyncReporter contract traced
	// writes use to carve the fsync span out of wal_append.
	lastFsyncNS atomic.Int64

	// Scrape-safe mirrors: read by metric gauges and Stats without
	// taking mu, so a checkpoint in progress never blocks a scrape.
	epoch       atomic.Int64
	walBytes    atomic.Int64
	walRecords  atomic.Int64
	snapEpoch   atomic.Int64
	checkpoints atomic.Int64
	lastCkUnix  atomic.Int64

	ckCh    chan struct{}
	closeCh chan struct{}
	wg      sync.WaitGroup

	// Metrics are optional; nil histograms are skipped.
	appendH *metrics.Histogram
	fsyncH  *metrics.Histogram
	ckH     *metrics.Histogram
}

// Open recovers (or initializes) a disk store in opts.Dir: it loads the
// newest valid snapshot, replays the log tail past the snapshot's
// epoch, truncates away a torn final record, and leaves the log handle
// positioned for appends. The Recovery result says what happened.
func Open(opts Options) (*DiskStore, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("store: no data directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	s := &DiskStore{
		opts:    opts,
		ckCh:    make(chan struct{}, 1),
		closeCh: make(chan struct{}),
	}

	phase := time.Now()
	shadow, snapEpoch, haveSnap, err := latestSnapshot(opts.Dir)
	if err != nil {
		return nil, err
	}
	s.rec.SnapshotLoadNS = time.Since(phase).Nanoseconds()
	if haveSnap {
		s.shadow = shadow
		s.shadowLog = world.NewChangeLog(shadow)
		s.snapEpoch.Store(snapEpoch)
		s.rec.SnapshotEpoch = snapEpoch
	}

	walPath := filepath.Join(opts.Dir, walName)
	data, err := os.ReadFile(walPath)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	epoch := snapEpoch
	if len(data) > 0 {
		phase = time.Now()
		recs, validEnd, torn, serr := scanWAL(data)
		if serr != nil {
			return nil, serr
		}
		s.rec.TornTail = torn
		for _, r := range recs {
			if r.epoch <= snapEpoch {
				continue // already inside the snapshot: replay is idempotent
			}
			if s.shadow == nil {
				return nil, fmt.Errorf("%w: record at epoch %d in %s", ErrNoBase, r.epoch, walPath)
			}
			if _, aerr := s.shadowLog.ApplyOps(r.ops); aerr != nil {
				return nil, fmt.Errorf("store: replaying wal record at epoch %d: %w", r.epoch, aerr)
			}
			s.rec.ReplayedRecords++
			s.rec.ReplayedOps += int64(len(r.ops))
			epoch = r.epoch
		}
		if s.shadowLog != nil {
			s.shadowLog.Drain() // no views to maintain; drop the replay delta
		}
		s.rec.ReplayNS = time.Since(phase).Nanoseconds()
		if torn {
			phase = time.Now()
			if err := os.Truncate(walPath, validEnd); err != nil {
				return nil, fmt.Errorf("store: truncating torn wal tail: %w", err)
			}
			s.rec.TruncateNS = time.Since(phase).Nanoseconds()
		}
		s.walRecords.Store(int64(len(recs)) - countCovered(recs, snapEpoch))
		s.walBytes.Store(validEnd)
		s.sinceOps = s.rec.ReplayedOps
	}
	s.rec.Epoch = epoch
	s.rec.Fresh = !haveSnap && s.walRecords.Load() == 0 && !s.rec.TornTail
	s.epoch.Store(epoch)

	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	end, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return nil, err
	}
	if end == 0 {
		if _, err := f.Write(walHeader); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
		end = int64(len(walHeader))
	}
	s.f = f
	s.walBytes.Store(end)

	s.wg.Add(1)
	go s.background()
	return s, nil
}

// countCovered counts scanned records the snapshot already includes
// (they sit in the log only until the next checkpoint rewrite).
func countCovered(recs []walRecord, snapEpoch int64) int64 {
	var n int64
	for _, r := range recs {
		if r.epoch <= snapEpoch {
			n++
		}
	}
	return n
}

// background runs the interval fsync ticker and the checkpoint worker.
func (s *DiskStore) background() {
	defer s.wg.Done()
	var tick *time.Ticker
	var tickC <-chan time.Time
	if s.opts.Fsync == FsyncInterval {
		tick = time.NewTicker(s.opts.SyncEvery)
		tickC = tick.C
		defer tick.Stop()
	}
	for {
		select {
		case <-s.closeCh:
			return
		case <-tickC:
			s.syncIfDirty()
		case <-s.ckCh:
			if err := s.Checkpoint(); err != nil && !errors.Is(err, ErrClosed) {
				s.mu.Lock()
				s.lastErr = err.Error()
				s.mu.Unlock()
				s.logError("checkpoint", err)
			}
		}
	}
}

func (s *DiskStore) syncIfDirty() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || !s.dirty {
		return
	}
	start := time.Now()
	if err := s.f.Sync(); err != nil {
		s.lastErr = err.Error()
		s.logError("fsync", err)
		return
	}
	s.dirty = false
	if s.fsyncH != nil {
		s.fsyncH.Observe(time.Since(start).Seconds())
	}
}

// logError surfaces a background failure — which Stats.LastError records
// but nothing reports — through the configured structured logger.
func (s *DiskStore) logError(op string, err error) {
	if s.opts.Logger == nil {
		return
	}
	s.opts.Logger.LogAttrs(context.Background(), slog.LevelError, "store.background_error",
		slog.String("op", op), slog.String("error", err.Error()))
}

// Recovery reports what Open found on disk.
func (s *DiskStore) Recovery() Recovery { return s.rec }

// LastFsyncNS reports the fsync share of the most recent Append — zero
// unless the policy synced inline (FsyncAlways). Meaningful only right
// after an Append on the same serialized write path; traced writes use
// it to attribute WAL time between buffering and stable storage.
func (s *DiskStore) LastFsyncNS() int64 { return s.lastFsyncNS.Load() }

// WorldClone returns an independent copy of the durable world (nil when
// the store was never seeded).
func (s *DiskStore) WorldClone() *relstore.DB {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.shadow == nil {
		return nil
	}
	return s.shadow.Clone()
}

// Seed installs the initial world and writes the base snapshot, so a
// later recovery always has a world to replay the log onto.
func (s *DiskStore) Seed(db *relstore.DB, epoch int64) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.shadow != nil {
		s.mu.Unlock()
		return ErrSeeded
	}
	s.shadow = db.Clone()
	s.shadowLog = world.NewChangeLog(s.shadow)
	s.epoch.Store(epoch)
	shadow := s.shadow
	s.mu.Unlock()
	// Dump from the private clone: the caller keeps mutating its world.
	if _, err := writeSnapshot(s.opts.Dir, epoch, shadow); err != nil {
		return err
	}
	s.snapEpoch.Store(epoch)
	return nil
}

// Append durably logs one committed op batch and advances the shadow
// world. The frame is written (and under FsyncAlways, synced) before
// the shadow moves, so the log is never behind the world it describes.
func (s *DiskStore) Append(epoch int64, ops []world.Op) error {
	start := time.Now()
	frame := appendFrame(nil, encodePayload(epoch, ops))

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, err := s.f.Write(frame); err != nil {
		// A partial frame write leaves a torn tail; the CRC framing makes
		// the next recovery drop it, so the store stays usable only if we
		// rewind. Truncate back to the pre-append length.
		if serr := s.f.Truncate(s.walBytes.Load()); serr == nil {
			_, _ = s.f.Seek(0, 2)
		}
		return fmt.Errorf("store: wal append: %w", err)
	}
	if s.opts.Fsync == FsyncAlways {
		fstart := time.Now()
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("store: wal fsync: %w", err)
		}
		fdur := time.Since(fstart)
		s.lastFsyncNS.Store(fdur.Nanoseconds())
		if s.fsyncH != nil {
			s.fsyncH.Observe(fdur.Seconds())
		}
	} else {
		s.lastFsyncNS.Store(0)
		s.dirty = true
	}
	if s.shadowLog != nil {
		if _, err := s.shadowLog.ApplyOps(ops); err != nil {
			// The log already holds the record, so the durable state is
			// correct; the in-memory shadow diverging means the caller fed
			// ops resolved against a different world — a bug to surface.
			return fmt.Errorf("store: shadow world rejected ops: %w", err)
		}
		s.shadowLog.Drain() // the shadow maintains no views; discard deltas
	}
	s.epoch.Store(epoch)
	s.walBytes.Add(int64(len(frame)))
	s.walRecords.Add(1)
	s.sinceOps += int64(len(ops))
	if s.appendH != nil {
		s.appendH.Observe(time.Since(start).Seconds())
	}

	// Nudge the background checkpoint when the tail has grown past the
	// thresholds (only meaningful once a world is seeded).
	if s.shadow != nil && s.checkpointDue() {
		select {
		case s.ckCh <- struct{}{}:
		default:
		}
	}
	return nil
}

// checkpointDue is called with mu held.
func (s *DiskStore) checkpointDue() bool {
	tail := s.walBytes.Load() - int64(len(walHeader))
	return (s.opts.CheckpointOps > 0 && s.sinceOps >= s.opts.CheckpointOps) ||
		(s.opts.CheckpointBytes > 0 && tail >= s.opts.CheckpointBytes)
}

// Checkpoint snapshots the shadow world at its current epoch and drops
// the covered log prefix. The world clone happens under the lock but
// the snapshot write does not, so appends only stall for the clone and
// the log rewrite.
func (s *DiskStore) Checkpoint() error {
	start := time.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.shadow == nil {
		s.mu.Unlock()
		return fmt.Errorf("store: checkpoint without a seeded world")
	}
	snap := s.shadow.Clone()
	epoch := s.epoch.Load()
	s.mu.Unlock()

	if _, err := writeSnapshot(s.opts.Dir, epoch, snap); err != nil {
		return err
	}

	// Rewrite the log keeping only records past the snapshot. Appends
	// racing this section are excluded by mu, so the kept tail is exact.
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if err := s.rewriteTailLocked(epoch); err != nil {
		return err
	}
	s.snapEpoch.Store(epoch)
	s.checkpoints.Add(1)
	s.lastCkUnix.Store(time.Now().Unix())
	removeSnapshotsBefore(s.opts.Dir, epoch)
	if s.ckH != nil {
		s.ckH.Observe(time.Since(start).Seconds())
	}
	return nil
}

// rewriteTailLocked rebuilds wal.log with only the records newer than
// epoch, atomically replacing the old file. Called with mu held.
func (s *DiskStore) rewriteTailLocked(epoch int64) error {
	walPath := filepath.Join(s.opts.Dir, walName)
	if err := s.f.Sync(); err != nil { // everything appended so far must be readable
		return err
	}
	data, err := os.ReadFile(walPath)
	if err != nil {
		return err
	}
	recs, _, _, err := scanWAL(data)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.opts.Dir, walName+".tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	var kept, keptOps int64
	out := append([]byte(nil), walHeader...)
	for _, r := range recs {
		if r.epoch > epoch {
			out = append(out, r.frame...)
			kept++
			keptOps += int64(len(r.ops))
		}
	}
	if _, err := tmp.Write(out); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), walPath); err != nil {
		return err
	}
	if err := syncDir(s.opts.Dir); err != nil {
		return err
	}
	old := s.f
	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return err
	}
	old.Close()
	s.f = f
	s.dirty = false
	s.walBytes.Store(int64(len(out)))
	s.walRecords.Store(kept)
	s.sinceOps = keptOps
	return nil
}

// Stats returns the durability counters for /statusz and /healthz.
func (s *DiskStore) Stats() Stats {
	st := Stats{
		Dir:           s.opts.Dir,
		Fsync:         s.opts.Fsync.String(),
		Epoch:         s.epoch.Load(),
		WALBytes:      s.walBytes.Load(),
		WALRecords:    s.walRecords.Load(),
		SnapshotEpoch: s.snapEpoch.Load(),
		Checkpoints:   s.checkpoints.Load(),
	}
	if ck := s.lastCkUnix.Load(); ck > 0 {
		st.LastCheckpointS = time.Since(time.Unix(ck, 0)).Seconds()
	}
	s.mu.Lock()
	st.LastError = s.lastErr
	s.mu.Unlock()
	return st
}

// RegisterMetrics publishes the store's instrumentation into reg: the
// wal append and fsync latency histograms, checkpoint counters, and
// scrape-time gauges over log size and epochs. Call it once, before the
// first Append.
func (s *DiskStore) RegisterMetrics(reg *metrics.Registry) {
	buckets := metrics.ExponentialBuckets(1e-6, 4, 12)
	s.appendH = reg.NewHistogram("factordb_wal_append_seconds",
		"wal record append latency (framing + write + policy fsync)", buckets)
	s.fsyncH = reg.NewHistogram("factordb_wal_fsync_seconds",
		"wal fsync latency (per append under fsync=always, per tick under interval)", buckets)
	s.ckH = reg.NewHistogram("factordb_checkpoint_seconds",
		"checkpoint latency (world clone + snapshot write + log rewrite)", nil)
	reg.NewGaugeFunc("factordb_wal_size_bytes", "wal file size, header included",
		func() float64 { return float64(s.walBytes.Load()) })
	reg.NewGaugeFunc("factordb_wal_records", "wal records currently on disk",
		func() float64 { return float64(s.walRecords.Load()) })
	reg.NewGaugeFunc("factordb_checkpoints_total", "checkpoints completed since open",
		func() float64 { return float64(s.checkpoints.Load()) })
	reg.NewGaugeFunc("factordb_last_checkpoint_epoch", "data epoch the newest snapshot covers",
		func() float64 { return float64(s.snapEpoch.Load()) })
	reg.NewGaugeFunc("factordb_durable_epoch", "data epoch of the durable world (snapshot + wal)",
		func() float64 { return float64(s.epoch.Load()) })
}

// Close flushes the log and releases the store.
func (s *DiskStore) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.closeCh)
	s.mu.Unlock()
	s.wg.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.dirty {
		err = s.f.Sync()
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}
