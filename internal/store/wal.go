package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"factordb/internal/relstore"
	"factordb/internal/world"
)

// WAL framing, version wal1. The file opens with the 5-byte header
// "wal1:"; every record after it is
//
//	uint32 payload length (little endian)
//	uint32 CRC-32 (IEEE) of the payload
//	payload
//
// and the payload is a versionless binary encoding of one committed op
// batch: the data epoch the batch produced (uvarint), the op count
// (uvarint), then each op as kind byte, relation name, row id, column
// positions and values (strings and byte counts length-prefixed,
// integers zig-zag uvarints, floats as IEEE 754 bits). The framing is
// self-validating: a reader stops at the first record whose length runs
// past EOF, whose CRC mismatches, or whose payload does not decode —
// which is exactly the torn-tail recovery contract. Incompatible format
// changes bump the header ("wal2:"), so an old reader refuses a new log
// instead of misparsing it.

var walHeader = []byte("wal1:")

// maxRecordBytes rejects absurd length prefixes (trailing garbage that
// happens to parse as a huge length) without attempting the read.
const maxRecordBytes = 1 << 28

// errTorn marks the first invalid record; scanning stops there.
var errTorn = errors.New("store: torn or corrupt wal record")

// ---- payload encoding ----

func appendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

func appendVarint(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendValue(dst []byte, v relstore.Value) []byte {
	dst = append(dst, byte(v.Kind()))
	switch v.Kind() {
	case relstore.TInt:
		dst = appendVarint(dst, v.AsInt())
	case relstore.TFloat:
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.AsFloat()))
	case relstore.TString:
		dst = appendString(dst, v.AsString())
	case relstore.TBool:
		b := byte(0)
		if v.AsBool() {
			b = 1
		}
		dst = append(dst, b)
	}
	return dst
}

// encodePayload renders one committed batch as a wal1 record payload.
func encodePayload(epoch int64, ops []world.Op) []byte {
	dst := make([]byte, 0, 64+32*len(ops))
	dst = appendUvarint(dst, uint64(epoch))
	dst = appendUvarint(dst, uint64(len(ops)))
	for _, op := range ops {
		dst = append(dst, byte(op.Kind))
		dst = appendString(dst, op.Rel)
		dst = appendVarint(dst, int64(op.Row))
		dst = appendUvarint(dst, uint64(len(op.Cols)))
		for _, c := range op.Cols {
			dst = appendVarint(dst, int64(c))
		}
		dst = appendUvarint(dst, uint64(len(op.Vals)))
		for _, v := range op.Vals {
			dst = appendValue(dst, v)
		}
	}
	return dst
}

// payloadReader decodes a record payload; every read error is errTorn
// because a half-written payload is indistinguishable from garbage.
type payloadReader struct {
	p []byte
	i int
}

func (r *payloadReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.p[r.i:])
	if n <= 0 {
		return 0, errTorn
	}
	r.i += n
	return v, nil
}

func (r *payloadReader) varint() (int64, error) {
	v, n := binary.Varint(r.p[r.i:])
	if n <= 0 {
		return 0, errTorn
	}
	r.i += n
	return v, nil
}

func (r *payloadReader) byte() (byte, error) {
	if r.i >= len(r.p) {
		return 0, errTorn
	}
	b := r.p[r.i]
	r.i++
	return b, nil
}

func (r *payloadReader) bytes(n uint64) ([]byte, error) {
	if n > uint64(len(r.p)-r.i) {
		return nil, errTorn
	}
	b := r.p[r.i : r.i+int(n)]
	r.i += int(n)
	return b, nil
}

func (r *payloadReader) string() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	b, err := r.bytes(n)
	return string(b), err
}

func (r *payloadReader) value() (relstore.Value, error) {
	k, err := r.byte()
	if err != nil {
		return relstore.Value{}, err
	}
	switch relstore.Type(k) {
	case relstore.TInt:
		i, err := r.varint()
		return relstore.Int(i), err
	case relstore.TFloat:
		b, err := r.bytes(8)
		if err != nil {
			return relstore.Value{}, err
		}
		return relstore.Float(math.Float64frombits(binary.LittleEndian.Uint64(b))), nil
	case relstore.TString:
		s, err := r.string()
		return relstore.String(s), err
	case relstore.TBool:
		b, err := r.byte()
		return relstore.Bool(b != 0), err
	}
	return relstore.Value{}, errTorn
}

// decodePayload parses one record payload back into its batch.
func decodePayload(p []byte) (epoch int64, ops []world.Op, err error) {
	r := &payloadReader{p: p}
	e, err := r.uvarint()
	if err != nil {
		return 0, nil, err
	}
	nops, err := r.uvarint()
	if err != nil {
		return 0, nil, err
	}
	// Every op costs at least one payload byte, so a count beyond the
	// payload length is garbage — reject before allocating for it.
	if nops > uint64(len(p)) {
		return 0, nil, errTorn
	}
	ops = make([]world.Op, 0, nops)
	for n := uint64(0); n < nops; n++ {
		var op world.Op
		k, err := r.byte()
		if err != nil {
			return 0, nil, err
		}
		op.Kind = world.OpKind(k)
		if op.Kind != world.OpInsert && op.Kind != world.OpUpdate && op.Kind != world.OpDelete {
			return 0, nil, errTorn
		}
		if op.Rel, err = r.string(); err != nil {
			return 0, nil, err
		}
		row, err := r.varint()
		if err != nil {
			return 0, nil, err
		}
		op.Row = relstore.RowID(row)
		ncols, err := r.uvarint()
		if err != nil {
			return 0, nil, err
		}
		if ncols > uint64(len(p)) {
			return 0, nil, errTorn
		}
		if ncols > 0 {
			op.Cols = make([]int, ncols)
			for i := range op.Cols {
				c, err := r.varint()
				if err != nil {
					return 0, nil, err
				}
				op.Cols[i] = int(c)
			}
		}
		nvals, err := r.uvarint()
		if err != nil {
			return 0, nil, err
		}
		if nvals > uint64(len(p)) {
			return 0, nil, errTorn
		}
		if nvals > 0 {
			op.Vals = make([]relstore.Value, nvals)
			for i := range op.Vals {
				if op.Vals[i], err = r.value(); err != nil {
					return 0, nil, err
				}
			}
		}
		ops = append(ops, op)
	}
	if r.i != len(p) {
		return 0, nil, errTorn // trailing bytes inside a framed payload
	}
	return int64(e), ops, nil
}

// ---- record framing ----

// appendFrame wraps a payload in the wal1 length+CRC frame.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

// walRecord is one scanned record plus its raw frame (reused verbatim
// when the checkpoint rewrites the log tail).
type walRecord struct {
	epoch int64
	ops   []world.Op
	frame []byte
}

// scanWAL parses a whole WAL image. It returns the valid records, the
// byte offset where the valid prefix ends, and whether anything after
// that offset had to be discarded (a torn or corrupt tail). A missing
// or wrong header is an error — that is not a torn tail but a file that
// was never a wal1 log.
func scanWAL(data []byte) (recs []walRecord, validEnd int64, torn bool, err error) {
	if len(data) < len(walHeader) {
		if len(data) == 0 {
			return nil, 0, false, io.EOF
		}
		return nil, 0, false, fmt.Errorf("store: wal shorter than its header")
	}
	if string(data[:len(walHeader)]) != string(walHeader) {
		return nil, 0, false, fmt.Errorf("store: wal header %q is not %q", data[:len(walHeader)], walHeader)
	}
	off := int64(len(walHeader))
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return recs, off, false, nil
		}
		if len(rest) < 8 {
			return recs, off, true, nil // truncated frame header
		}
		length := binary.LittleEndian.Uint32(rest[:4])
		crc := binary.LittleEndian.Uint32(rest[4:8])
		if length > maxRecordBytes || uint64(len(rest)-8) < uint64(length) {
			return recs, off, true, nil // garbage length or truncated payload
		}
		payload := rest[8 : 8+length]
		if crc32.ChecksumIEEE(payload) != crc {
			return recs, off, true, nil // bit rot or torn write
		}
		epoch, ops, derr := decodePayload(payload)
		if derr != nil {
			return recs, off, true, nil // framed garbage
		}
		frame := rest[:8+length]
		recs = append(recs, walRecord{epoch: epoch, ops: ops, frame: frame})
		off += int64(8 + length)
	}
}
