package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"factordb/internal/relstore"
	"factordb/internal/world"
)

// testWorld builds a tiny two-relation world with every value type.
func testWorld(t *testing.T) *relstore.DB {
	t.Helper()
	db := relstore.NewDB()
	tok, err := relstore.NewSchema("TOKEN",
		relstore.Column{Name: "TOK_ID", Type: relstore.TInt},
		relstore.Column{Name: "STRING", Type: relstore.TString},
		relstore.Column{Name: "SCORE", Type: relstore.TFloat},
		relstore.Column{Name: "GOLD", Type: relstore.TBool},
	)
	if err != nil {
		t.Fatal(err)
	}
	rel := db.MustCreate(tok)
	for i := 0; i < 8; i++ {
		_, err := rel.Insert(relstore.Tuple{
			relstore.Int(int64(i)), relstore.String("w"), relstore.Float(0.5), relstore.Bool(i%2 == 0),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// dump renders a world to bytes for byte-identity comparisons.
func dump(t *testing.T, db *relstore.DB) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := db.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// updateOp builds a single-row STRING update against TOKEN.
func updateOp(row int64, s string) world.Op {
	return world.Op{Kind: world.OpUpdate, Rel: "TOKEN", Row: relstore.RowID(row),
		Cols: []int{1}, Vals: []relstore.Value{relstore.String(s)}}
}

func insertOp(id int64, s string) world.Op {
	return world.Op{Kind: world.OpInsert, Rel: "TOKEN", Vals: relstore.Tuple{
		relstore.Int(id), relstore.String(s), relstore.Float(1.25), relstore.Bool(true),
	}}
}

func deleteOp(row int64) world.Op {
	return world.Op{Kind: world.OpDelete, Rel: "TOKEN", Row: relstore.RowID(row)}
}

func openStore(t *testing.T, dir string, opts Options) *DiskStore {
	t.Helper()
	opts.Dir = dir
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPayloadRoundTrip(t *testing.T) {
	ops := []world.Op{
		insertOp(100, "añ\x00ẞ"), // exercise non-ASCII and NUL bytes
		updateOp(3, "Boston"),
		deleteOp(5),
		{Kind: world.OpUpdate, Rel: "R", Row: 7, Cols: []int{0, 2},
			Vals: []relstore.Value{relstore.Float(-0.25), relstore.Bool(false)}},
	}
	epoch, got, err := decodePayload(encodePayload(42, ops))
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 42 {
		t.Fatalf("epoch %d, want 42", epoch)
	}
	if len(got) != len(ops) {
		t.Fatalf("got %d ops, want %d", len(got), len(ops))
	}
	for i, op := range got {
		want := ops[i]
		if op.Kind != want.Kind || op.Rel != want.Rel || op.Row != want.Row ||
			len(op.Cols) != len(want.Cols) || len(op.Vals) != len(want.Vals) {
			t.Fatalf("op %d: %+v, want %+v", i, op, want)
		}
		for j := range op.Vals {
			if !op.Vals[j].Equal(want.Vals[j]) || op.Vals[j].Kind() != want.Vals[j].Kind() {
				t.Fatalf("op %d val %d: %v, want %v", i, j, op.Vals[j], want.Vals[j])
			}
		}
	}
}

// TestReopenRestoresWorldAndEpoch is the core durability contract:
// seed, append, close, reopen — the recovered world is byte-identical
// to the in-memory one and the epoch survives.
func TestReopenRestoresWorldAndEpoch(t *testing.T) {
	dir := t.TempDir()
	db := testWorld(t)
	s := openStore(t, dir, Options{Fsync: FsyncNever})
	if !s.Recovery().Fresh {
		t.Fatal("new directory should recover as fresh")
	}
	if err := s.Seed(db, 0); err != nil {
		t.Fatal(err)
	}
	log := world.NewChangeLog(db)
	for i := int64(1); i <= 5; i++ {
		ops := []world.Op{updateOp(i, "v"), insertOp(100+i, "new")}
		if _, err := log.ApplyOps(ops); err != nil {
			t.Fatal(err)
		}
		if err := s.Append(i, ops); err != nil {
			t.Fatal(err)
		}
	}
	want := dump(t, db)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openStore(t, dir, Options{})
	rec := r.Recovery()
	if rec.Epoch != 5 || rec.ReplayedRecords != 5 || rec.ReplayedOps != 10 || rec.TornTail || rec.Fresh {
		t.Fatalf("recovery %+v, want epoch 5, 5 records, 10 ops, no torn tail", rec)
	}
	got := r.WorldClone()
	if got == nil {
		t.Fatal("no recovered world")
	}
	if !bytes.Equal(dump(t, got), want) {
		t.Fatal("recovered world differs from the world at close")
	}
}

// TestCheckpointReplaysOnlyTail: after a checkpoint, reopening must
// replay only records past the snapshot epoch, and the wal must have
// dropped the covered prefix.
func TestCheckpointReplaysOnlyTail(t *testing.T) {
	dir := t.TempDir()
	db := testWorld(t)
	s := openStore(t, dir, Options{Fsync: FsyncNever})
	if err := s.Seed(db, 0); err != nil {
		t.Fatal(err)
	}
	log := world.NewChangeLog(db)
	apply := func(epoch int64) {
		ops := []world.Op{updateOp(epoch%8, "ck")}
		if _, err := log.ApplyOps(ops); err != nil {
			t.Fatal(err)
		}
		if err := s.Append(epoch, ops); err != nil {
			t.Fatal(err)
		}
	}
	for e := int64(1); e <= 6; e++ {
		apply(e)
	}
	preBytes := s.Stats().WALBytes
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.SnapshotEpoch != 6 || st.WALRecords != 0 {
		t.Fatalf("after checkpoint: %+v, want snapshot epoch 6 and empty wal", st)
	}
	if st.WALBytes >= preBytes {
		t.Fatalf("checkpoint did not shrink the wal: %d -> %d bytes", preBytes, st.WALBytes)
	}
	for e := int64(7); e <= 9; e++ {
		apply(e)
	}
	want := dump(t, db)
	s.Close()

	r := openStore(t, dir, Options{})
	rec := r.Recovery()
	if rec.SnapshotEpoch != 6 || rec.Epoch != 9 || rec.ReplayedRecords != 3 {
		t.Fatalf("recovery %+v, want snapshot 6, epoch 9, 3 tail records", rec)
	}
	if !bytes.Equal(dump(t, r.WorldClone()), want) {
		t.Fatal("recovered world differs after checkpoint + tail replay")
	}
}

// TestOpCountTriggersCheckpoint: steady writes must keep the log
// bounded without any explicit Checkpoint call.
func TestOpCountTriggersCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db := testWorld(t)
	s := openStore(t, dir, Options{Fsync: FsyncNever, CheckpointOps: 4, CheckpointBytes: -1})
	if err := s.Seed(db, 0); err != nil {
		t.Fatal(err)
	}
	log := world.NewChangeLog(db)
	for e := int64(1); e <= 40; e++ {
		ops := []world.Op{updateOp(e%8, "auto")}
		if _, err := log.ApplyOps(ops); err != nil {
			t.Fatal(err)
		}
		if err := s.Append(e, ops); err != nil {
			t.Fatal(err)
		}
	}
	// The checkpoint worker is asynchronous; Close drains it, and the
	// final Stats must show at least one checkpoint and a bounded tail.
	deadline := 200
	for s.Stats().Checkpoints == 0 && deadline > 0 {
		deadline--
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		break
	}
	st := s.Stats()
	if st.Checkpoints == 0 {
		t.Fatal("no checkpoint ran")
	}
	if st.LastError != "" {
		t.Fatalf("background error: %s", st.LastError)
	}
	if st.WALRecords >= 40 {
		t.Fatalf("wal never truncated: %d records", st.WALRecords)
	}
}

// corruptTailCase mutilates a valid log and says what recovery must
// still see.
type corruptTailCase struct {
	name string
	// lost reports whether the mangling destroys the final record (as
	// opposed to appending garbage after it, which keeps all records).
	lost   bool
	mangle func(t *testing.T, walPath string)
}

// TestCorruptWALTails: truncated record, bad CRC and trailing garbage
// must all recover cleanly to the last valid record — no panic, epoch
// correct, and the next store usable for appends.
func TestCorruptWALTails(t *testing.T) {
	cases := []corruptTailCase{
		{"truncated-frame-header", true, func(t *testing.T, p string) {
			chop(t, p, 3) // leaves a partial length prefix
		}},
		{"truncated-payload", true, func(t *testing.T, p string) {
			data := read(t, p)
			chop(t, p, lastFrameLen(t, data)-5) // frame header intact, payload cut
		}},
		{"bad-crc", true, func(t *testing.T, p string) {
			data := read(t, p)
			data[len(data)-1] ^= 0xFF // flip a payload bit of the final record
			write(t, p, data)
		}},
		{"trailing-garbage", false, func(t *testing.T, p string) {
			data := append(read(t, p), []byte("!!garbage that is no frame!!")...)
			write(t, p, data)
		}},
		{"garbage-length-prefix", false, func(t *testing.T, p string) {
			data := append(read(t, p), 0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3, 4, 5, 6, 7, 8)
			write(t, p, data)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			db := testWorld(t)
			s := openStore(t, dir, Options{Fsync: FsyncNever})
			if err := s.Seed(db, 0); err != nil {
				t.Fatal(err)
			}
			log := world.NewChangeLog(db)
			for e := int64(1); e <= 3; e++ {
				ops := []world.Op{updateOp(e, "good")}
				if _, err := log.ApplyOps(ops); err != nil {
					t.Fatal(err)
				}
				if err := s.Append(e, ops); err != nil {
					t.Fatal(err)
				}
			}
			good := dump(t, db) // world before the record the mangling may destroy
			badOps := []world.Op{updateOp(7, "doomed")}
			if _, err := log.ApplyOps(badOps); err != nil {
				t.Fatal(err)
			}
			if err := s.Append(4, badOps); err != nil {
				t.Fatal(err)
			}
			if !tc.lost {
				good = dump(t, db) // garbage-after cases keep record 4
			}
			s.Close()

			walPath := filepath.Join(dir, walName)
			tc.mangle(t, walPath)

			wantEpoch, wantRecs := int64(4), int64(4)
			if tc.lost {
				wantEpoch, wantRecs = 3, 3
			}
			r := openStore(t, dir, Options{Fsync: FsyncNever})
			rec := r.Recovery()
			if !rec.TornTail {
				t.Fatalf("recovery %+v: torn tail not reported", rec)
			}
			if rec.Epoch != wantEpoch || rec.ReplayedRecords != wantRecs {
				t.Fatalf("recovery %+v, want epoch %d from %d records", rec, wantEpoch, wantRecs)
			}
			if !bytes.Equal(dump(t, r.WorldClone()), good) {
				t.Fatal("recovered world is not the last-valid-record world")
			}
			// The torn tail is gone: appending and reopening must work.
			w := r.WorldClone()
			wlog := world.NewChangeLog(w)
			ops := []world.Op{updateOp(2, "after")}
			if _, err := wlog.ApplyOps(ops); err != nil {
				t.Fatal(err)
			}
			if err := r.Append(wantEpoch+1, ops); err != nil {
				t.Fatal(err)
			}
			want := dump(t, w)
			r.Close()
			r2 := openStore(t, dir, Options{})
			if rec := r2.Recovery(); rec.TornTail || rec.Epoch != wantEpoch+1 {
				t.Fatalf("second recovery %+v, want clean epoch %d", rec, wantEpoch+1)
			}
			if !bytes.Equal(dump(t, r2.WorldClone()), want) {
				t.Fatal("world after post-corruption append did not survive")
			}
		})
	}
}

// TestFsyncPolicies: every policy must keep the same recovery
// semantics on a clean close.
func TestFsyncPolicies(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(p.String(), func(t *testing.T) {
			dir := t.TempDir()
			db := testWorld(t)
			s := openStore(t, dir, Options{Fsync: p})
			if err := s.Seed(db, 0); err != nil {
				t.Fatal(err)
			}
			log := world.NewChangeLog(db)
			ops := []world.Op{updateOp(1, "x")}
			if _, err := log.ApplyOps(ops); err != nil {
				t.Fatal(err)
			}
			if err := s.Append(1, ops); err != nil {
				t.Fatal(err)
			}
			if got := s.Stats().Fsync; got != p.String() {
				t.Fatalf("Stats.Fsync = %q, want %q", got, p)
			}
			s.Close()
			r := openStore(t, dir, Options{})
			if rec := r.Recovery(); rec.Epoch != 1 {
				t.Fatalf("epoch %d under policy %v, want 1", rec.Epoch, p)
			}
		})
	}
}

// TestSeedTwiceFails pins the single-seed contract.
func TestSeedTwiceFails(t *testing.T) {
	s := openStore(t, t.TempDir(), Options{})
	if err := s.Seed(testWorld(t), 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Seed(testWorld(t), 0); !errors.Is(err, ErrSeeded) {
		t.Fatalf("second seed: %v, want ErrSeeded", err)
	}
}

// TestWALWithoutSnapshotRefused: log records with no base world are an
// incomplete store, not a silent empty recovery.
func TestWALWithoutSnapshotRefused(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir, Options{Fsync: FsyncNever})
	if err := s.Append(1, []world.Op{updateOp(0, "x")}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := Open(Options{Dir: dir}); !errors.Is(err, ErrNoBase) {
		t.Fatalf("open: %v, want ErrNoBase", err)
	}
}

// TestCorruptLatestSnapshotFallsBack: a bit-rotted newest snapshot must
// not lose the store while an older one plus the log can still recover.
func TestCorruptLatestSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	db := testWorld(t)
	s := openStore(t, dir, Options{Fsync: FsyncNever})
	if err := s.Seed(db, 0); err != nil {
		t.Fatal(err)
	}
	log := world.NewChangeLog(db)
	for e := int64(1); e <= 2; e++ {
		ops := []world.Op{updateOp(e, "snapfall")}
		if _, err := log.ApplyOps(ops); err != nil {
			t.Fatal(err)
		}
		if err := s.Append(e, ops); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := dump(t, db)
	s.Close()

	// Rot the newest snapshot; the seed snapshot (epoch 0) plus the
	// checkpoint-surviving wal records must... the wal was truncated at
	// the checkpoint, so this only works because the older snapshot is
	// retained AND the wal still holds nothing — recovery lands on the
	// older snapshot and must refuse (stale world) or recover what the
	// log can prove. The contract we pin: Open fails loudly rather than
	// serving the stale epoch-0 world as if it were epoch 2.
	names, err := snapshotNames(dir)
	if err != nil || len(names) == 0 {
		t.Fatalf("no snapshots: %v", err)
	}
	newest := filepath.Join(dir, names[len(names)-1])
	data := read(t, newest)
	data[len(data)-1] ^= 0xFF
	write(t, newest, data)

	r, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("open after snapshot rot: %v", err)
	}
	defer r.Close()
	rec := r.Recovery()
	if rec.Epoch == 2 && bytes.Equal(dump(t, r.WorldClone()), want) {
		t.Fatal("unexpectedly recovered the full state from a rotted snapshot — update this test's contract")
	}
	// The fallback recovered the older snapshot; its epoch must be the
	// older snapshot's, never the rotted one's.
	if rec.SnapshotEpoch != 0 {
		t.Fatalf("fallback snapshot epoch %d, want 0", rec.SnapshotEpoch)
	}
}

// ---- helpers ----

func read(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func write(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func chop(t *testing.T, path string, n int) {
	t.Helper()
	data := read(t, path)
	if n <= 0 || n >= len(data) {
		t.Fatalf("cannot chop %d of %d bytes", n, len(data))
	}
	write(t, path, data[:len(data)-n])
}

// lastFrameLen returns the on-disk size of the final record's frame.
func lastFrameLen(t *testing.T, data []byte) int {
	t.Helper()
	recs, _, torn, err := scanWAL(data)
	if err != nil || torn || len(recs) == 0 {
		t.Fatalf("scan: %v (torn=%v, %d recs)", err, torn, len(recs))
	}
	return len(recs[len(recs)-1].frame)
}
