package factordb

import (
	"context"
	"fmt"
	"time"

	"factordb/internal/ra"
	"factordb/internal/serve"
	"factordb/internal/sqlparse"
)

// Stmt is a prepared statement: the SQL is lexed and parsed exactly once,
// at Prepare time, and each execution binds its ? placeholder arguments
// into the retained syntax tree as literals. A statement without
// placeholders is also fully planned at Prepare time, so executing it
// never touches the front end at all. Stmt is safe for concurrent use;
// binding copies, it never mutates the retained tree.
//
// Placeholders stand for literal values only (strings, integers,
// floats), anywhere the dialect accepts a literal: comparison and IN
// values, INSERT rows, UPDATE assignments, HAVING bounds.
type Stmt struct {
	db   *DB
	sql  string
	stmt *sqlparse.Statement

	// Zero-placeholder fast path, compiled once at Prepare.
	comp *sqlparse.Compiled // SELECT
	mut  ra.Mutation        // DML
}

// Prepare parses sql once and returns a reusable statement handle. The
// statement may be a SELECT (execute with Stmt.Query) or DML (execute
// with Stmt.Exec); ? placeholders are bound positionally at execution.
func (db *DB) Prepare(sql string) (*Stmt, error) {
	if db.isClosed() {
		return nil, ErrClosed
	}
	stmt, err := sqlparse.ParseStatement(sql)
	if err != nil {
		db.countFailed()
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	if stmt.Explain != nil {
		db.countFailed()
		return nil, fmt.Errorf("%w: EXPLAIN cannot be prepared (issue it through Query)", ErrBadQuery)
	}
	s := &Stmt{db: db, sql: sql, stmt: stmt}
	if stmt.Params == 0 {
		// No placeholders: plan now, through the shared cache, so every
		// execution skips the front end entirely.
		if stmt.Select != nil {
			s.comp, _, err = db.plans.CompileQuery(sql)
		} else {
			s.mut, _, err = db.plans.CompileMutation(sql)
		}
		if err != nil {
			db.countFailed()
			return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
		}
	}
	return s, nil
}

// NumInput returns the number of ? placeholders in the statement.
func (s *Stmt) NumInput() int { return s.stmt.Params }

// Close releases the statement. It holds no engine resources, so Close
// only exists for database/sql symmetry.
func (s *Stmt) Close() error { return nil }

// Query executes a prepared SELECT with the given placeholder arguments
// and the DB's default query options. Results are identical to
// DB.Query with the literals inlined: the bound tree is re-planned and
// canonicalized, so the plan fingerprint — and with it result-cache and
// shared-view identity — matches the inlined spelling exactly.
func (s *Stmt) Query(ctx context.Context, args ...any) (*Rows, error) {
	qo := queryOptions{samples: s.db.opts.samples, confidence: s.db.opts.confidence}
	return s.query(ctx, args, qo)
}

// query is the option-carrying execution core behind Stmt.Query and the
// transports' placeholder-argument paths.
func (s *Stmt) query(ctx context.Context, args []any, qo queryOptions) (*Rows, error) {
	db := s.db
	if db.isClosed() {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.stmt.Select == nil {
		return nil, fmt.Errorf("%w: prepared %s is a DML statement, not a query (use Exec)", ErrBadQuery, s.stmt.Kind())
	}
	// BindArgs validates the argument count even for a zero-placeholder
	// statement (where it returns the retained tree unchanged).
	bound, err := sqlparse.BindArgs(s.stmt, args)
	if err != nil {
		db.countFailed()
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	comp := s.comp
	if comp == nil {
		plan, spec, err := sqlparse.PlanQuery(bound.Select)
		if err != nil {
			db.countFailed()
			return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
		}
		comp = &sqlparse.Compiled{
			Plan: plan,
			Spec: spec,
			Cols: ra.OutputColumns(plan),
		}
	}
	cols := append([]string(nil), comp.Cols...)
	if db.eng != nil {
		res, err := db.eng.QueryPlan(ctx, s.sql, comp.Plan, comp.Spec, serve.QueryOptions{
			Samples:    qo.samples,
			Confidence: qo.confidence,
			NoCache:    qo.noCache,
			Trace:      qo.trace,
			TraceID:    qo.traceID,
		})
		if err != nil {
			return nil, mapServeErr(err)
		}
		if res.Partial && !qo.allowPartial {
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			return nil, ErrClosed
		}
		return &Rows{
			cols:       cols,
			cis:        res.TupleCIs(),
			i:          -1,
			samples:    res.Samples,
			chains:     res.Chains,
			epoch:      res.Epoch,
			confidence: res.Confidence,
			partial:    res.Partial,
			earlyStop:  res.EarlyStop,
			cached:     res.Cached,
			elapsed:    res.Elapsed,
			trace:      traceFromServe(res.Trace),
		}, nil
	}
	lt := db.newLocalQueryTrace(s.sql, qo)
	lt.span("compile")
	lt.attr("plan_cache", "prepared")
	return db.queryLocal(ctx, s.sql, comp.Plan, comp.Spec, cols, qo, lt)
}

// Exec executes a prepared DML statement with the given placeholder
// arguments, with the same commit semantics as DB.Exec.
func (s *Stmt) Exec(ctx context.Context, args ...any) (*ExecResult, error) {
	return s.exec(ctx, args, execOptions{})
}

// exec is the option-carrying execution core behind Stmt.Exec and the
// transports' placeholder-argument write paths.
func (s *Stmt) exec(ctx context.Context, args []any, eo execOptions) (*ExecResult, error) {
	db := s.db
	if db.isClosed() {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.stmt.Select != nil {
		return nil, fmt.Errorf("%w: prepared SELECT is a query, not a DML statement (use Query)", ErrBadQuery)
	}
	bound, err := sqlparse.BindArgs(s.stmt, args)
	if err != nil {
		db.countFailed()
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	mut := s.mut
	if mut == nil {
		if mut, err = sqlparse.LowerMutation(s.sql, bound); err != nil {
			db.countFailed()
			return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
		}
	}
	if db.eng != nil {
		res, err := db.eng.ExecMutationTraced(ctx, s.sql, mut, serve.ExecOptions{Trace: eo.trace, TraceID: eo.traceID})
		if err != nil {
			return nil, mapServeErr(err)
		}
		return &ExecResult{
			RowsAffected: res.RowsAffected,
			Epoch:        res.Epoch,
			Chains:       res.Chains,
			Elapsed:      res.Elapsed,
			Trace:        traceFromServe(res.Trace),
		}, nil
	}
	begin := time.Now()
	tr := db.newLocalExecTrace(s.sql, eo, begin)
	tr.span("compile")
	tr.attr("plan_cache", "prepared")
	return db.execLocal(s.sql, mut, tr, begin)
}

// queryArgs runs one SELECT with placeholder arguments through a
// throwaway prepared statement — the path behind driver-level and HTTP
// query arguments.
func (db *DB) queryArgs(ctx context.Context, sql string, args []any, opts ...QueryOption) (*Rows, error) {
	if len(args) == 0 {
		return db.Query(ctx, sql, opts...)
	}
	qo := queryOptions{samples: db.opts.samples, confidence: db.opts.confidence}
	for _, f := range opts {
		f(&qo)
	}
	if qo.samples <= 0 {
		qo.samples = db.opts.samples
	}
	if qo.confidence <= 0 || qo.confidence >= 1 {
		return nil, fmt.Errorf("%w: confidence %v outside (0,1)", ErrBadQuery, qo.confidence)
	}
	stmt, err := db.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return stmt.query(ctx, args, qo)
}

// execArgs runs one DML statement with placeholder arguments through a
// throwaway prepared statement.
func (db *DB) execArgs(ctx context.Context, sql string, args []any, opts ...ExecOption) (*ExecResult, error) {
	if len(args) == 0 {
		return db.Exec(ctx, sql, opts...)
	}
	var eo execOptions
	for _, f := range opts {
		f(&eo)
	}
	stmt, err := db.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return stmt.exec(ctx, args, eo)
}
