package sqldriver

import (
	"bytes"
	"context"
	"database/sql"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"factordb"
)

// The three-path write tests build small private NER databases — writes
// mutate worlds, so nothing here may share state with the read-path
// tests. All paths use identical model and engine parameters; generation,
// training and the seeded walks are deterministic, which is what makes
// exact cross-transport comparisons possible.
const (
	wtTokens = 1200
	wtTrain  = 8000
	wtSeed   = 7
	wtThin   = 200
	wtSamp   = 12
)

const (
	wtEvidenceSQL = `SELECT STRING FROM TOKEN WHERE TOK_ID = 3`
	// A spelling variant of wtEvidenceSQL: same canonical plan, same
	// fingerprint — it must share cache entries yet never resurrect a
	// pre-write answer.
	wtEvidenceVariant = "select  STRING\n from TOKEN\n where TOK_ID=3"
	wtUpdateSQL       = `UPDATE TOKEN SET STRING = 'REVISEDNAME' WHERE TOK_ID = 3`
	wtMarginalsSQL    = `SELECT STRING FROM TOKEN WHERE LABEL='B-PER'`
)

func wtModes() []factordb.Mode {
	return []factordb.Mode{factordb.ModeMaterialized, factordb.ModeServed}
}

func wtOpenFacade(t testing.TB, mode factordb.Mode) *factordb.DB {
	t.Helper()
	db, err := factordb.Open(
		factordb.NER(factordb.NERConfig{Tokens: wtTokens, Seed: wtSeed, TrainSteps: wtTrain}),
		factordb.WithMode(mode), factordb.WithSteps(wtThin), factordb.WithSeed(wtSeed),
		factordb.WithChains(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// pathResult is what each transport observed, for exact cross-path
// comparison.
type pathResult struct {
	preString  string             // evidence value before the write
	rows       int64              // rows affected by the update
	postString string             // evidence value after the write
	marginals  map[string]float64 // hidden-field query answer after the write
}

// facadePath drives the sequence through factordb.DB directly.
func facadePath(t *testing.T, mode factordb.Mode) pathResult {
	t.Helper()
	db := wtOpenFacade(t, mode)
	ctx := context.Background()
	var out pathResult

	readEvidence := func(sql string) (string, bool) {
		rows, err := db.Query(ctx, sql, factordb.Samples(wtSamp))
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		if !rows.Next() {
			t.Fatalf("evidence query %q returned no tuples", sql)
		}
		var s string
		if err := rows.Scan(&s); err != nil {
			t.Fatal(err)
		}
		if rows.Prob() != 1 {
			t.Fatalf("evidence marginal %v, want 1", rows.Prob())
		}
		return s, rows.Cached()
	}

	out.preString, _ = readEvidence(wtEvidenceSQL)
	if mode == factordb.ModeServed {
		// Establish the pre-write cache entry and prove the variant
		// spelling shares it.
		if _, cached := readEvidence(wtEvidenceVariant); !cached {
			t.Error("pre-write spelling variant missed the shared cache entry")
		}
	}

	res, err := db.Exec(ctx, wtUpdateSQL)
	if err != nil {
		t.Fatal(err)
	}
	out.rows = res.RowsAffected
	if res.Epoch != 1 || db.WriteEpoch() != 1 {
		t.Errorf("post-write epoch = %d/%d, want 1", res.Epoch, db.WriteEpoch())
	}

	post, cached := readEvidence(wtEvidenceVariant)
	if cached {
		t.Error("cached pre-write answer served after the write")
	}
	out.postString = post
	out.marginals = facadeMarginals(t, db, wtMarginalsSQL)
	return out
}

func facadeMarginals(t *testing.T, db *factordb.DB, sql string) map[string]float64 {
	t.Helper()
	rows, err := db.Query(context.Background(), sql, factordb.Samples(wtSamp))
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	out := map[string]float64{}
	for rows.Next() {
		var s string
		if err := rows.Scan(&s); err != nil {
			t.Fatal(err)
		}
		out[s] = rows.Prob()
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// driverPath drives the same sequence through database/sql.
func driverPath(t *testing.T, mode factordb.Mode) pathResult {
	t.Helper()
	dsn := fmt.Sprintf("ner?tokens=%d&train_steps=%d&seed=%d&steps=%d&samples=%d&chains=2&mode=%s",
		wtTokens, wtTrain, wtSeed, wtThin, wtSamp, mode)
	db, err := sql.Open("factordb", dsn)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	ctx := context.Background()
	var out pathResult

	readEvidence := func(sql string) string {
		var s string
		var p, lo, hi float64
		if err := db.QueryRowContext(ctx, sql).Scan(&s, &p, &lo, &hi); err != nil {
			t.Fatalf("evidence query %q: %v", sql, err)
		}
		if p != 1 {
			t.Fatalf("evidence marginal %v, want 1", p)
		}
		return s
	}

	out.preString = readEvidence(wtEvidenceSQL)
	if mode == factordb.ModeServed {
		readEvidence(wtEvidenceVariant) // keep the walk sequence identical to the other paths
	}

	res, err := db.ExecContext(ctx, wtUpdateSQL)
	if err != nil {
		t.Fatal(err)
	}
	if out.rows, err = res.RowsAffected(); err != nil {
		t.Fatal(err)
	}
	if _, err := res.LastInsertId(); err == nil {
		t.Error("LastInsertId succeeded; row identities are internal")
	}

	out.postString = readEvidence(wtEvidenceVariant)
	out.marginals = map[string]float64{}
	rows, err := db.QueryContext(ctx, wtMarginalsSQL)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	for rows.Next() {
		var s string
		var p, lo, hi float64
		if err := rows.Scan(&s, &p, &lo, &hi); err != nil {
			t.Fatal(err)
		}
		out.marginals[s] = p
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// httpPath drives the same sequence over POST /query and POST /exec.
func httpPath(t *testing.T, mode factordb.Mode) pathResult {
	t.Helper()
	db := wtOpenFacade(t, mode)
	srv := httptest.NewServer(db.Handler())
	t.Cleanup(srv.Close)
	var out pathResult

	post := func(path string, body any, dst any) {
		t.Helper()
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: status %d", path, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
			t.Fatal(err)
		}
	}
	type queryResp struct {
		Tuples []struct {
			Values []string `json:"values"`
			P      float64  `json:"p"`
		} `json:"tuples"`
		Cached bool `json:"cached"`
	}
	readEvidence := func(sql string) (string, bool) {
		var qr queryResp
		post("/query", map[string]any{"sql": sql, "samples": wtSamp}, &qr)
		if len(qr.Tuples) != 1 || qr.Tuples[0].P != 1 {
			t.Fatalf("evidence answer = %+v", qr.Tuples)
		}
		return qr.Tuples[0].Values[0], qr.Cached
	}

	out.preString, _ = readEvidence(wtEvidenceSQL)
	if mode == factordb.ModeServed {
		if _, cached := readEvidence(wtEvidenceVariant); !cached {
			t.Error("pre-write spelling variant missed the shared cache entry")
		}
	}

	var er struct {
		RowsAffected int64 `json:"rows_affected"`
		Epoch        int64 `json:"epoch"`
	}
	post("/exec", map[string]any{"sql": wtUpdateSQL}, &er)
	out.rows = er.RowsAffected
	if er.Epoch != 1 {
		t.Errorf("exec epoch = %d, want 1", er.Epoch)
	}

	post2, cached := readEvidence(wtEvidenceVariant)
	if cached {
		t.Error("cached pre-write answer served after the write")
	}
	out.postString = post2

	var mr queryResp
	post("/query", map[string]any{"sql": wtMarginalsSQL, "samples": wtSamp}, &mr)
	out.marginals = map[string]float64{}
	for _, tp := range mr.Tuples {
		out.marginals[tp.Values[0]] = tp.P
	}
	return out
}

// TestWriteThreePaths is the write subsystem's acceptance test: the same
// UPDATE issued through the facade, through database/sql and through
// POST /exec yields identical post-write answers — and on the served
// engine a result cached before the write (under any spelling of the
// query) is never served after it. Verified across the direct
// (materialized) and served modes.
func TestWriteThreePaths(t *testing.T) {
	for _, mode := range wtModes() {
		t.Run(mode.String(), func(t *testing.T) {
			results := map[string]pathResult{
				"facade": facadePath(t, mode),
				"sql":    driverPath(t, mode),
				"http":   httpPath(t, mode),
			}
			ref := results["facade"]
			if ref.preString == "REVISEDNAME" {
				t.Fatalf("degenerate corpus: evidence already holds the post-write value")
			}
			if len(ref.marginals) == 0 {
				t.Fatal("degenerate run: no B-PER marginals sampled")
			}
			for name, r := range results {
				if r.rows != 1 {
					t.Errorf("%s: update affected %d rows, want 1", name, r.rows)
				}
				if r.postString != "REVISEDNAME" {
					t.Errorf("%s: post-write evidence %q, want REVISEDNAME", name, r.postString)
				}
				if r.preString != ref.preString {
					t.Errorf("%s: pre-write evidence %q, facade saw %q", name, r.preString, ref.preString)
				}
				if len(r.marginals) != len(ref.marginals) {
					t.Errorf("%s: %d marginal tuples, facade %d", name, len(r.marginals), len(ref.marginals))
					continue
				}
				for s, p := range ref.marginals {
					if got, ok := r.marginals[s]; !ok || got != p {
						t.Errorf("%s: marginal[%q] = %v (present=%v), facade %v", name, s, got, ok, p)
					}
				}
			}
		})
	}
}
