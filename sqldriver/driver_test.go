package sqldriver

import (
	"context"
	"database/sql"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"factordb"
	"factordb/internal/core"
	"factordb/internal/exp"
)

// The round-trip tests open the same small NER corpus the direct
// reference system is built from: generation and training are
// deterministic in the seed, so driver results can be compared exactly.
const (
	testTokens     = 3000
	testTrainSteps = 20000
	testSeed       = 5
	testThin       = 300
	testSamples    = 30
)

const nerDSN = "ner?tokens=3000&train_steps=20000&seed=5&steps=300&samples=30"

// openShared caches one sql.DB per DSN for the whole test run; the model
// build behind each DSN is the expensive part.
var (
	dbMu    sync.Mutex
	dbCache = map[string]*sql.DB{}
	sysOnce sync.Once
	sysVal  *exp.NERSystem
	sysErr  error
)

func openShared(t testing.TB, dsn string) *sql.DB {
	t.Helper()
	dbMu.Lock()
	defer dbMu.Unlock()
	if db, ok := dbCache[dsn]; ok {
		return db
	}
	db, err := sql.Open("factordb", dsn)
	if err != nil {
		t.Fatal(err)
	}
	dbCache[dsn] = db
	return db
}

func directSystem(t testing.TB) *exp.NERSystem {
	t.Helper()
	sysOnce.Do(func() {
		sysVal, sysErr = exp.BuildNER(exp.Config{
			NumTokens: testTokens, Seed: testSeed, TrainSteps: testTrainSteps, UseSkip: true,
		})
	})
	if sysErr != nil {
		t.Fatal(sysErr)
	}
	return sysVal
}

// queryMarginals runs the paper's Query 1 through database/sql and
// returns tuple → (p, lo, hi), asserting the wire contract on the way.
func queryMarginals(t *testing.T, db *sql.DB) map[string][3]float64 {
	t.Helper()
	rows, err := db.QueryContext(context.Background(), factordb.Query1)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"STRING", "P", "CI_LO", "CI_HI"}
	if len(cols) != len(want) {
		t.Fatalf("columns = %v, want %v", cols, want)
	}
	for i := range cols {
		if cols[i] != want[i] {
			t.Fatalf("columns = %v, want %v", cols, want)
		}
	}
	out := map[string][3]float64{}
	prev := 1.1
	for rows.Next() {
		var s string
		var p, lo, hi float64
		if err := rows.Scan(&s, &p, &lo, &hi); err != nil {
			t.Fatal(err)
		}
		if p < 0 || p > 1 || lo > p || hi < p {
			t.Errorf("tuple %q: malformed (p=%v, ci=[%v, %v])", s, p, lo, hi)
		}
		if p > prev {
			t.Errorf("result set not sorted by descending probability: %v after %v", p, prev)
		}
		prev = p
		out[s] = [3]float64{p, lo, hi}
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if len(out) == 0 {
		t.Fatal("Query 1 returned no tuples")
	}
	return out
}

// TestRoundTrip is the acceptance criterion of the API redesign: opening
// the database with sql.Open and running the paper's Query 1 through
// QueryContext returns the same tuple set as driving a core.Evaluator
// directly — in both naive and materialized mode, which (sharing one
// seed and hence one walk) must also agree with each other exactly.
func TestRoundTrip(t *testing.T) {
	// The direct reference: the same corpus, chain seed, thinning and
	// budget through internal wiring.
	ch, err := directSystem(t).NewChain(core.Materialized, exp.Query1, testThin, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Evaluator.Run(testSamples, nil); err != nil {
		t.Fatal(err)
	}
	wantRes := ch.Evaluator.Results()
	want := map[string]float64{}
	for _, tp := range wantRes {
		want[tp.Tuple[0].AsString()] = tp.P
	}

	marginals := map[string]map[string][3]float64{}
	for _, mode := range []string{"naive", "materialized"} {
		got := queryMarginals(t, openShared(t, nerDSN+"&mode="+mode))
		marginals[mode] = got
		if len(got) != len(want) {
			t.Fatalf("%s: driver answered %d tuples, evaluator %d", mode, len(got), len(want))
		}
		for s, phi := range got {
			if wp, ok := want[s]; !ok || wp != phi[0] {
				t.Errorf("%s: tuple %q: driver p=%v, evaluator p=%v (present=%v)", mode, s, phi[0], wp, ok)
			}
		}
	}
	// Naive and materialized agree through the driver too.
	for s, phi := range marginals["naive"] {
		if mp := marginals["materialized"][s]; mp != phi {
			t.Errorf("tuple %q: naive %v vs materialized %v", s, phi, mp)
		}
	}
}

func TestContextCancellation(t *testing.T) {
	// The coref workload builds instantly and PairQuery is cheap per
	// sample, so an effectively unbounded budget cancels mid-query.
	db := openShared(t, "coref?entities=8&mentions=5&seed=17&steps=500&samples=1000000000")

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	rows, err := db.QueryContext(ctx, factordb.PairQuery)
	if err == nil {
		rows.Close()
		t.Fatal("unbounded query under a 150ms deadline succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("mid-query cancellation = %v, want context.DeadlineExceeded", err)
	}

	// Already-cancelled context fails without touching the engine.
	done, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := db.QueryContext(done, factordb.PairQuery); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestDriverErrors(t *testing.T) {
	db := openShared(t, "coref?entities=5&mentions=3&seed=17&steps=200&samples=20")

	// SQL errors surface verbatim, position included.
	_, err := db.QueryContext(context.Background(), "SELECT STRING, FROM MENTION")
	if err == nil || !strings.Contains(err.Error(), "line 1 column 16") {
		t.Errorf("parse error lost its position through database/sql: %v", err)
	}

	// The store is read-only.
	if _, err := db.ExecContext(context.Background(), "DELETE FROM MENTION"); err == nil {
		t.Error("Exec succeeded on a read-only store")
	}

	// Transactions are not supported.
	if _, err := db.Begin(); err == nil {
		t.Error("Begin succeeded")
	}

	// Prepared statements work for queries.
	stmt, err := db.Prepare(factordb.PairQuery)
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	rows, err := stmt.QueryContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rows.Close()
}

func TestBadDSN(t *testing.T) {
	for _, dsn := range []string{
		"mystery?tokens=100",    // unknown model
		"ner?tokens=abc",        // non-integer parameter
		"ner?mode=quantum",      // unknown mode
		"ner?tokens=100;seed=2", // malformed query string
	} {
		db, err := sql.Open("factordb", dsn)
		if err == nil {
			// database/sql may defer connector errors to first use.
			err = db.Ping()
			db.Close()
		}
		if err == nil {
			t.Errorf("DSN %q accepted", dsn)
		}
	}
}

// TestRankedThreePaths is the ranked-query acceptance criterion: ORDER
// BY P DESC LIMIT k returns identical tuples — same order, same
// marginals — through all three consumption paths: the direct evaluator
// (ranked by hand with the compiled result spec), factordb.DB.Query,
// and database/sql. All three share one corpus, chain seed, thinning
// interval and budget, so the walks — and hence the estimates — are
// bitwise identical.
func TestRankedThreePaths(t *testing.T) {
	const k = 5
	rankedSQL := factordb.Query1 + " ORDER BY P DESC LIMIT 5"
	ctx := context.Background()

	// Path 1: direct evaluator, ranked through the chain's compiled spec.
	ch, err := directSystem(t).NewChain(core.Materialized, rankedSQL, testThin, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Evaluator.Run(testSamples, nil); err != nil {
		t.Fatal(err)
	}
	want := ch.RankedResultsCI(1.96)
	if len(want) != k {
		t.Fatalf("degenerate corpus: ranked reference has %d tuples, want %d", len(want), k)
	}

	check := func(path string, got [][2]any) {
		t.Helper()
		if len(got) != k {
			t.Fatalf("%s: %d tuples, want %d", path, len(got), k)
		}
		for i, g := range got {
			if g[0].(string) != want[i].Tuple[0].AsString() || g[1].(float64) != want[i].P {
				t.Errorf("%s rank %d: (%v, %v) vs direct (%v, %v)",
					path, i, g[0], g[1], want[i].Tuple[0].AsString(), want[i].P)
			}
		}
	}

	// Path 2: the factordb facade.
	fdb, err := factordb.Open(
		factordb.NER(factordb.NERConfig{Tokens: testTokens, Seed: testSeed, TrainSteps: testTrainSteps}),
		factordb.WithSteps(testThin), factordb.WithSeed(testSeed), factordb.WithSamples(testSamples))
	if err != nil {
		t.Fatal(err)
	}
	defer fdb.Close()
	frows, err := fdb.Query(ctx, rankedSQL)
	if err != nil {
		t.Fatal(err)
	}
	var facade [][2]any
	for frows.Next() {
		var s string
		if err := frows.Scan(&s); err != nil {
			t.Fatal(err)
		}
		facade = append(facade, [2]any{s, frows.Prob()})
	}
	frows.Close()
	check("facade", facade)

	// Path 3: database/sql.
	srows, err := openShared(t, nerDSN+"&mode=materialized").QueryContext(ctx, rankedSQL)
	if err != nil {
		t.Fatal(err)
	}
	defer srows.Close()
	var driver [][2]any
	for srows.Next() {
		var s string
		var p, lo, hi float64
		if err := srows.Scan(&s, &p, &lo, &hi); err != nil {
			t.Fatal(err)
		}
		driver = append(driver, [2]any{s, p})
	}
	if err := srows.Err(); err != nil {
		t.Fatal(err)
	}
	check("database/sql", driver)
}
