// Package sqldriver registers factordb with database/sql under the
// driver name "factordb", so the probabilistic database is reachable
// through the standard library's tooling:
//
//	import (
//	    "database/sql"
//	    _ "factordb/sqldriver"
//	)
//
//	db, err := sql.Open("factordb", "ner?tokens=20000&mode=materialized&samples=100")
//	rows, err := db.QueryContext(ctx, "SELECT STRING FROM TOKEN WHERE LABEL='B-PER'")
//
// The DSN is "<model>?<params>": model "ner" or "coref", with model
// parameters (ner: tokens, seed, train_steps, tokens_per_doc,
// temperature, linear, target; coref: entities, mentions, seed) and
// engine parameters (mode=naive|materialized|served, samples, steps,
// chains, burn, confidence, seed) mixed in one query string.
//
// Every result row carries the query's output columns followed by three
// trailing columns: P (the tuple's marginal probability), CI_LO and
// CI_HI (its confidence interval). Result sets are ordered by descending
// probability unless the query carries an ORDER BY clause; ORDER BY P
// DESC LIMIT k ranks and truncates server-side, so the driver streams
// exactly the top-k rows in rank order.
//
// The workload model is built — and for NER, trained — once per sql.DB
// on first use, not per connection: all pooled connections share one
// underlying factordb.DB, which is released when the sql.DB is closed.
// In served mode the engine identifies queries by the fingerprint of
// their canonical plan rather than the SQL text, so spelling variants of
// one query issued across pooled connections share a result-cache entry
// and, while concurrently in flight, one materialized view per chain.
//
// DML goes through the standard Exec surface:
//
//	res, err := db.ExecContext(ctx, "UPDATE TOKEN SET STRING='Boston' WHERE TOK_ID=4711")
//	n, _ := res.RowsAffected()
//
// A write mutates every possible-world copy in place and the samplers
// keep walking (the paper's update model): subsequent queries reflect the
// mutation, cached pre-write answers are never served again, and no
// reopen is needed. LastInsertId is not supported (row identities are
// internal), nor are transactions.
//
// Statements support ? placeholder arguments, bound positionally as
// literal values (strings, integers, floats):
//
//	stmt, err := db.PrepareContext(ctx, "SELECT STRING FROM TOKEN WHERE LABEL = ?")
//	rows, err := stmt.QueryContext(ctx, "B-PER")
//
// Prepare parses the SQL exactly once; each execution binds the
// arguments into the retained syntax tree and re-plans, which — because
// plans are canonicalized before fingerprinting — yields the same plan
// fingerprint, cache entries, and shared views as the query with its
// literals inlined. Ad-hoc QueryContext/ExecContext calls with args
// prepare behind the scenes.
package sqldriver

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"fmt"
	"io"
	"net/url"
	"strconv"
	"strings"
	"sync"

	"factordb"
)

func init() {
	sql.Register("factordb", &Driver{})
}

// Driver is the database/sql driver. It implements DriverContext, so
// each sql.DB gets one Connector holding one shared factordb.DB.
type Driver struct{}

var (
	_ driver.Driver        = (*Driver)(nil)
	_ driver.DriverContext = (*Driver)(nil)
)

// Open implements driver.Driver for clients that bypass OpenConnector.
func (d *Driver) Open(dsn string) (driver.Conn, error) {
	c, err := d.OpenConnector(dsn)
	if err != nil {
		return nil, err
	}
	return c.Connect(context.Background())
}

// OpenConnector parses the DSN eagerly (so malformed DSNs fail at
// sql.Open time on first use) and defers the expensive model build to
// the first connection.
func (d *Driver) OpenConnector(dsn string) (driver.Connector, error) {
	model, opts, err := parseDSN(dsn)
	if err != nil {
		return nil, err
	}
	return &connector{drv: d, model: model, opts: opts}, nil
}

// connector owns the one factordb.DB shared by every pooled connection.
type connector struct {
	drv   *Driver
	model factordb.Model
	opts  []factordb.Option

	once sync.Once
	db   *factordb.DB
	err  error
}

var _ io.Closer = (*connector)(nil) // sql.DB.Close closes the connector

func (c *connector) Connect(context.Context) (driver.Conn, error) {
	c.once.Do(func() { c.db, c.err = factordb.Open(c.model, c.opts...) })
	if c.err != nil {
		return nil, c.err
	}
	return &conn{db: c.db}, nil
}

func (c *connector) Driver() driver.Driver { return c.drv }

// Close releases the shared database; database/sql calls it from
// sql.DB.Close.
func (c *connector) Close() error {
	var err error
	c.once.Do(func() {}) // settle the build state
	if c.db != nil {
		err = c.db.Close()
	}
	return err
}

// parseDSN splits "<model>?<params>" and maps the parameters onto a
// workload config and Open options.
func parseDSN(dsn string) (factordb.Model, []factordb.Option, error) {
	name := dsn
	rawQuery := ""
	if i := strings.IndexByte(dsn, '?'); i >= 0 {
		name, rawQuery = dsn[:i], dsn[i+1:]
	}
	params, err := url.ParseQuery(rawQuery)
	if err != nil {
		return nil, nil, fmt.Errorf("sqldriver: bad DSN %q: %v", dsn, err)
	}
	p := &dsnParams{values: params}

	var model factordb.Model
	switch name {
	case "ner":
		model = factordb.NER(factordb.NERConfig{
			Tokens:          p.intVal("tokens"),
			Seed:            p.int64Val("seed"),
			TrainSteps:      p.intVal("train_steps"),
			TokensPerDoc:    p.intVal("tokens_per_doc"),
			Temperature:     p.floatVal("temperature"),
			LinearChain:     p.boolVal("linear"),
			TargetSubstring: p.strVal("target"),
		})
	case "coref":
		model = factordb.Coref(factordb.CorefConfig{
			Entities:          p.intVal("entities"),
			MentionsPerEntity: p.intVal("mentions"),
			Seed:              p.int64Val("seed"),
		})
	default:
		return nil, nil, fmt.Errorf("sqldriver: unknown model %q in DSN (want ner or coref)", name)
	}

	var opts []factordb.Option
	if s := p.strVal("mode"); s != "" {
		mode, err := factordb.ParseMode(s)
		if err != nil {
			return nil, nil, err
		}
		opts = append(opts, factordb.WithMode(mode))
	}
	if n := p.intVal("samples"); n > 0 {
		opts = append(opts, factordb.WithSamples(n))
	}
	if n := p.intVal("steps"); n > 0 {
		opts = append(opts, factordb.WithSteps(n))
	}
	if n := p.intVal("chains"); n > 0 {
		opts = append(opts, factordb.WithChains(n))
	}
	if n := p.intVal("burn"); n > 0 {
		opts = append(opts, factordb.WithBurnIn(n))
	}
	if c := p.floatVal("confidence"); c != 0 {
		opts = append(opts, factordb.WithConfidence(c))
	}
	if s := p.strVal("seed"); s != "" {
		opts = append(opts, factordb.WithSeed(p.int64Val("seed")))
	}
	if p.err != nil {
		return nil, nil, p.err
	}
	return model, opts, nil
}

// dsnParams accumulates the first conversion error instead of forcing a
// check at every read.
type dsnParams struct {
	values url.Values
	err    error
}

func (p *dsnParams) strVal(key string) string { return p.values.Get(key) }

func (p *dsnParams) intVal(key string) int {
	s := p.values.Get(key)
	if s == "" {
		return 0
	}
	n, err := strconv.Atoi(s)
	if err != nil && p.err == nil {
		p.err = fmt.Errorf("sqldriver: DSN parameter %s=%q is not an integer", key, s)
	}
	return n
}

func (p *dsnParams) int64Val(key string) int64 {
	s := p.values.Get(key)
	if s == "" {
		return 0
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil && p.err == nil {
		p.err = fmt.Errorf("sqldriver: DSN parameter %s=%q is not an integer", key, s)
	}
	return n
}

func (p *dsnParams) floatVal(key string) float64 {
	s := p.values.Get(key)
	if s == "" {
		return 0
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil && p.err == nil {
		p.err = fmt.Errorf("sqldriver: DSN parameter %s=%q is not a number", key, s)
	}
	return f
}

func (p *dsnParams) boolVal(key string) bool {
	s := p.values.Get(key)
	if s == "" {
		return false
	}
	b, err := strconv.ParseBool(s)
	if err != nil && p.err == nil {
		p.err = fmt.Errorf("sqldriver: DSN parameter %s=%q is not a boolean", key, s)
	}
	return b
}

// conn is one pooled connection over the shared database. The underlying
// factordb.DB is concurrency-safe, so conn holds no state of its own and
// Close is a no-op (the connector owns the DB lifetime).
type conn struct {
	db *factordb.DB
}

var (
	_ driver.Conn           = (*conn)(nil)
	_ driver.QueryerContext = (*conn)(nil)
	_ driver.ExecerContext  = (*conn)(nil)
)

func (c *conn) Prepare(query string) (driver.Stmt, error) {
	ps, err := c.db.Prepare(query)
	if err != nil {
		return nil, err
	}
	return &stmt{conn: c, ps: ps}, nil
}

func (c *conn) Close() error { return nil }

func (c *conn) Begin() (driver.Tx, error) {
	return nil, fmt.Errorf("sqldriver: transactions are not supported")
}

func (c *conn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	if len(args) == 0 {
		fr, err := c.db.Query(ctx, query)
		if err != nil {
			return nil, err
		}
		return newRows(fr), nil
	}
	// Placeholder arguments route through the prepared path: parse once,
	// bind the args as literals, re-plan.
	vals, err := argValues(args)
	if err != nil {
		return nil, err
	}
	ps, err := c.db.Prepare(query)
	if err != nil {
		return nil, err
	}
	defer ps.Close()
	fr, err := ps.Query(ctx, vals...)
	if err != nil {
		return nil, err
	}
	return newRows(fr), nil
}

// ExecContext runs one DML statement (INSERT, UPDATE or DELETE) against
// the shared database. The returned result reports rows affected;
// LastInsertId is not supported.
func (c *conn) ExecContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Result, error) {
	if len(args) == 0 {
		res, err := c.db.Exec(ctx, query)
		if err != nil {
			return nil, err
		}
		return execResult{rows: res.RowsAffected}, nil
	}
	vals, err := argValues(args)
	if err != nil {
		return nil, err
	}
	ps, err := c.db.Prepare(query)
	if err != nil {
		return nil, err
	}
	defer ps.Close()
	res, err := ps.Exec(ctx, vals...)
	if err != nil {
		return nil, err
	}
	return execResult{rows: res.RowsAffected}, nil
}

// argValues unwraps positional driver arguments. Named arguments have no
// SQL-side syntax in this dialect.
func argValues(args []driver.NamedValue) ([]any, error) {
	out := make([]any, len(args))
	for i, a := range args {
		if a.Name != "" {
			return nil, fmt.Errorf("sqldriver: named argument %q is not supported (use ? placeholders)", a.Name)
		}
		out[i] = a.Value
	}
	return out, nil
}

// execResult adapts factordb.ExecResult to driver.Result.
type execResult struct {
	rows int64
}

func (execResult) LastInsertId() (int64, error) {
	return 0, fmt.Errorf("sqldriver: LastInsertId is not supported (row identities are internal)")
}

func (r execResult) RowsAffected() (int64, error) { return r.rows, nil }

// stmt is a real prepared statement: the SQL was parsed exactly once at
// Prepare time, and each execution binds its ? arguments as literals
// into the retained syntax tree and re-plans.
type stmt struct {
	conn *conn
	ps   *factordb.Stmt
}

var (
	_ driver.Stmt             = (*stmt)(nil)
	_ driver.StmtQueryContext = (*stmt)(nil)
	_ driver.StmtExecContext  = (*stmt)(nil)
)

func (s *stmt) Close() error  { return s.ps.Close() }
func (s *stmt) NumInput() int { return s.ps.NumInput() }

func (s *stmt) Exec(args []driver.Value) (driver.Result, error) {
	return s.ExecContext(context.Background(), namedValues(args))
}

func (s *stmt) ExecContext(ctx context.Context, args []driver.NamedValue) (driver.Result, error) {
	vals, err := argValues(args)
	if err != nil {
		return nil, err
	}
	res, err := s.ps.Exec(ctx, vals...)
	if err != nil {
		return nil, err
	}
	return execResult{rows: res.RowsAffected}, nil
}

func (s *stmt) Query(args []driver.Value) (driver.Rows, error) {
	return s.QueryContext(context.Background(), namedValues(args))
}

func (s *stmt) QueryContext(ctx context.Context, args []driver.NamedValue) (driver.Rows, error) {
	vals, err := argValues(args)
	if err != nil {
		return nil, err
	}
	fr, err := s.ps.Query(ctx, vals...)
	if err != nil {
		return nil, err
	}
	return newRows(fr), nil
}

// namedValues adapts the legacy positional argument form.
func namedValues(args []driver.Value) []driver.NamedValue {
	out := make([]driver.NamedValue, len(args))
	for i, v := range args {
		out[i] = driver.NamedValue{Ordinal: i + 1, Value: v}
	}
	return out
}

// rows adapts factordb.Rows to driver.Rows, appending the probability
// and confidence-interval columns after the query's own output columns.
type rows struct {
	fr   *factordb.Rows
	cols []string
}

var _ driver.Rows = (*rows)(nil)

func newRows(fr *factordb.Rows) *rows {
	cols := append(append([]string{}, fr.Columns()...), "P", "CI_LO", "CI_HI")
	return &rows{fr: fr, cols: cols}
}

func (r *rows) Columns() []string { return r.cols }

func (r *rows) Close() error { return r.fr.Close() }

func (r *rows) Next(dest []driver.Value) error {
	if !r.fr.Next() {
		return io.EOF
	}
	vals, err := r.fr.Row()
	if err != nil {
		return err
	}
	if want := len(vals) + 3; len(dest) != want {
		return fmt.Errorf("sqldriver: destination holds %d values, row has %d", len(dest), want)
	}
	for i, v := range vals {
		dest[i] = v
	}
	lo, hi := r.fr.CI()
	dest[len(vals)] = r.fr.Prob()
	dest[len(vals)+1] = lo
	dest[len(vals)+2] = hi
	return nil
}
