package sqldriver

import (
	"context"
	"database/sql"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"factordb"
)

// TestPreparedArgsThreePaths is the prepared-statement equivalence
// contract: binding ? placeholders must yield exactly the answer the
// same statement gives with the literals spelled inline, on every
// query surface — the factordb facade's Prepare, database/sql
// (both implicit per-call args and an explicit reused *sql.Stmt), and
// the HTTP transport's args field. All paths share one corpus, seed,
// thinning interval and sample budget, so the marginals are
// deterministic and the comparison is exact.
func TestPreparedArgsThreePaths(t *testing.T) {
	const k = 5
	const paramSQL = "SELECT STRING FROM TOKEN WHERE LABEL = ? ORDER BY P DESC LIMIT 5"
	const inlineSQL = "SELECT STRING FROM TOKEN WHERE LABEL = 'B-PER' ORDER BY P DESC LIMIT 5"
	ctx := context.Background()

	collect := func(rows *sql.Rows, err error) [][2]any {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		var out [][2]any
		for rows.Next() {
			var s string
			var p, lo, hi float64
			if err := rows.Scan(&s, &p, &lo, &hi); err != nil {
				t.Fatal(err)
			}
			out = append(out, [2]any{s, p})
		}
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	check := func(path string, got [][2]any, want [][2]any) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: %d tuples, want %d", path, len(got), len(want))
		}
		for i := range got {
			if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
				t.Errorf("%s rank %d: (%v, %v), inlined literals gave (%v, %v)",
					path, i, got[i][0], got[i][1], want[i][0], want[i][1])
			}
		}
	}

	sdb := openShared(t, nerDSN+"&mode=materialized")
	want := collect(sdb.QueryContext(ctx, inlineSQL))
	if len(want) != k {
		t.Fatalf("degenerate corpus: inlined reference has %d tuples, want %d", len(want), k)
	}

	// Path 1a: database/sql with per-call args (the driver prepares and
	// binds behind Query).
	check("database/sql args", collect(sdb.QueryContext(ctx, paramSQL, "B-PER")), want)

	// Path 1b: an explicit *sql.Stmt, executed twice — the second run
	// must come out of the prepared plan identically.
	st, err := sdb.PrepareContext(ctx, paramSQL)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	check("sql.Stmt run 1", collect(st.QueryContext(ctx, "B-PER")), want)
	check("sql.Stmt run 2", collect(st.QueryContext(ctx, "B-PER")), want)
	// database/sql itself rejects the wrong arity for an explicit Stmt
	// (NumInput is reported by the driver), before the driver even runs.
	if _, err := st.QueryContext(ctx); err == nil || !strings.Contains(err.Error(), "expected 1 argument") {
		t.Errorf("sql.Stmt with no args: err %v, want an argument-count error", err)
	}

	// Path 2: the factordb facade's own prepared statements.
	fdb, err := factordb.Open(
		factordb.NER(factordb.NERConfig{Tokens: testTokens, Seed: testSeed, TrainSteps: testTrainSteps}),
		factordb.WithSteps(testThin), factordb.WithSeed(testSeed), factordb.WithSamples(testSamples))
	if err != nil {
		t.Fatal(err)
	}
	defer fdb.Close()
	fstmt, err := fdb.Prepare(paramSQL)
	if err != nil {
		t.Fatal(err)
	}
	defer fstmt.Close()
	var facade [][2]any
	frows, err := fstmt.Query(ctx, "B-PER")
	if err != nil {
		t.Fatal(err)
	}
	for frows.Next() {
		var s string
		if err := frows.Scan(&s); err != nil {
			t.Fatal(err)
		}
		facade = append(facade, [2]any{s, frows.Prob()})
	}
	frows.Close()
	check("facade Prepare", facade, want)
	if _, err := fstmt.Query(ctx, "B-PER", "extra"); err == nil || !strings.Contains(err.Error(), "placeholder") {
		t.Errorf("facade Stmt with extra arg: err %v, want a placeholder-count error", err)
	}

	// Path 3: HTTP, binding through the request's args field.
	srv := httptest.NewServer(fdb.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/query", "application/json",
		strings.NewReader(`{"sql": "SELECT STRING FROM TOKEN WHERE LABEL = ? ORDER BY P DESC LIMIT 5", "args": ["B-PER"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query with args: status %d", resp.StatusCode)
	}
	var qr struct {
		Tuples []struct {
			Values []string `json:"values"`
			P      float64  `json:"p"`
		} `json:"tuples"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	var httpGot [][2]any
	for _, tu := range qr.Tuples {
		if len(tu.Values) != 1 {
			t.Fatalf("HTTP tuple has %d values, want 1", len(tu.Values))
		}
		// JSON round-trips the probability through decimal text; compare
		// to the float64 within one ulp-scale epsilon below.
		httpGot = append(httpGot, [2]any{tu.Values[0], tu.P})
	}
	if len(httpGot) != len(want) {
		t.Fatalf("HTTP: %d tuples, want %d", len(httpGot), len(want))
	}
	for i := range httpGot {
		p := httpGot[i][1].(float64)
		if httpGot[i][0] != want[i][0] || math.Abs(p-want[i][1].(float64)) > 1e-12 {
			t.Errorf("HTTP rank %d: (%v, %v), inlined literals gave (%v, %v)",
				i, httpGot[i][0], p, want[i][0], want[i][1])
		}
	}

	// Missing args over HTTP must be a 400, not a silent empty result.
	resp2, err := http.Post(srv.URL+"/query", "application/json",
		strings.NewReader(`{"sql": "SELECT STRING FROM TOKEN WHERE LABEL = ? ORDER BY P DESC LIMIT 5"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("POST /query with unbound placeholder: status %d, want 400", resp2.StatusCode)
	}
}
