package factordb

import (
	"fmt"
	"time"

	"factordb/internal/core"
	"factordb/internal/relstore"
)

// Rows is the streaming result of DB.Query: answer tuples sorted by
// descending marginal probability — or by the query's ORDER BY clause,
// with any LIMIT already applied — each carrying the tuple values, the
// probability estimate, and its confidence interval. The iteration
// protocol mirrors database/sql:
//
//	rows, err := db.Query(ctx, factordb.Query1)
//	...
//	defer rows.Close()
//	for rows.Next() {
//	    var s string
//	    if err := rows.Scan(&s); err != nil { ... }
//	    fmt.Println(s, rows.Prob())
//	}
//	if err := rows.Err(); err != nil { ... }
//
// Rows is not safe for concurrent use.
type Rows struct {
	cols []string
	cis  []core.TupleCI
	i    int // current row; -1 before the first Next

	samples    int64
	chains     int
	epoch      int64
	confidence float64
	partial    bool
	earlyStop  bool
	cached     bool
	elapsed    time.Duration
	trace      *QueryTrace

	closed bool
	err    error
}

// Columns returns the output column names, excluding the probability and
// interval (which are per-row metadata read through Prob and CI — the
// database/sql driver is what surfaces them as trailing columns).
func (r *Rows) Columns() []string { return r.cols }

// Len returns the number of answer tuples.
func (r *Rows) Len() int { return len(r.cis) }

// Next advances to the next answer tuple, returning false when the
// result set is exhausted or the rows are closed.
func (r *Rows) Next() bool {
	if r.closed || r.i+1 >= len(r.cis) {
		return false
	}
	r.i++
	return true
}

func (r *Rows) current() (core.TupleCI, error) {
	switch {
	case r.closed:
		return core.TupleCI{}, fmt.Errorf("factordb: rows are closed")
	case r.i < 0:
		return core.TupleCI{}, fmt.Errorf("factordb: Scan called before Next")
	case r.i >= len(r.cis):
		return core.TupleCI{}, fmt.Errorf("factordb: Scan called after the last row")
	}
	return r.cis[r.i], nil
}

// Scan copies the current tuple's column values into dest, which must
// hold one pointer per column: *string, *int64, *int, *float64, *bool,
// or *any. Numeric columns scan into *float64 with the usual widening;
// any column scans into *string via its text rendering.
func (r *Rows) Scan(dest ...any) error {
	row, err := r.current()
	if err != nil {
		return r.fail(err)
	}
	if len(dest) != len(row.Tuple) {
		return r.fail(fmt.Errorf("factordb: Scan got %d destinations for %d columns", len(dest), len(row.Tuple)))
	}
	for i, v := range row.Tuple {
		if err := scanValue(dest[i], v, i); err != nil {
			return r.fail(err)
		}
	}
	return nil
}

// fail records the first Scan failure so it also surfaces through Err,
// protecting callers who only check errors after the iteration loop.
func (r *Rows) fail(err error) error {
	if r.err == nil {
		r.err = err
	}
	return err
}

func scanValue(dest any, v relstore.Value, i int) error {
	switch d := dest.(type) {
	case *string:
		*d = v.String()
	case *int64:
		if v.Kind() != relstore.TInt {
			return fmt.Errorf("factordb: column %d is %v, not scannable into *int64", i, v.Kind())
		}
		*d = v.AsInt()
	case *int:
		if v.Kind() != relstore.TInt {
			return fmt.Errorf("factordb: column %d is %v, not scannable into *int", i, v.Kind())
		}
		*d = int(v.AsInt())
	case *float64:
		if v.Kind() != relstore.TInt && v.Kind() != relstore.TFloat {
			return fmt.Errorf("factordb: column %d is %v, not scannable into *float64", i, v.Kind())
		}
		*d = v.AsFloat()
	case *bool:
		if v.Kind() != relstore.TBool {
			return fmt.Errorf("factordb: column %d is %v, not scannable into *bool", i, v.Kind())
		}
		*d = v.AsBool()
	case *any:
		*d = goValue(v)
	default:
		return fmt.Errorf("factordb: unsupported Scan destination type %T for column %d", dest, i)
	}
	return nil
}

// goValue converts a stored value to its natural Go representation.
func goValue(v relstore.Value) any {
	switch v.Kind() {
	case relstore.TInt:
		return v.AsInt()
	case relstore.TFloat:
		return v.AsFloat()
	case relstore.TBool:
		return v.AsBool()
	default:
		return v.AsString()
	}
}

// Row returns the current tuple's values in their natural Go types
// (int64, float64, bool, string) — the allocation-light path the
// database/sql driver iterates with.
func (r *Rows) Row() ([]any, error) {
	row, err := r.current()
	if err != nil {
		return nil, err
	}
	out := make([]any, len(row.Tuple))
	for i, v := range row.Tuple {
		out[i] = goValue(v)
	}
	return out, nil
}

// Prob returns the current tuple's estimated marginal probability of
// membership in the query answer (Equation 5 of the paper).
func (r *Rows) Prob() float64 {
	if row, err := r.current(); err == nil {
		return row.P
	}
	return 0
}

// CI returns the Wilson confidence interval for the current tuple's
// marginal at the query's confidence level.
func (r *Rows) CI() (lo, hi float64) {
	if row, err := r.current(); err == nil {
		return row.Lo, row.Hi
	}
	return 0, 0
}

// Err returns the first error recorded during iteration. The answer set
// is fully materialized when Query returns, so Err is nil unless a Scan
// failure (type mismatch, arity mismatch, protocol misuse) occurred.
func (r *Rows) Err() error { return r.err }

// Close releases the rows. Further Next calls return false. Close is
// idempotent and always returns nil; it exists so callers can treat Rows
// like database/sql rows.
func (r *Rows) Close() error {
	r.closed = true
	return nil
}

// Samples returns how many possible-world samples the estimate is built
// from (summed across chains in served mode).
func (r *Rows) Samples() int64 { return r.samples }

// Chains returns how many parallel chains contributed samples.
func (r *Rows) Chains() int { return r.chains }

// Confidence returns the two-sided interval mass CI was computed at.
func (r *Rows) Confidence() float64 { return r.confidence }

// Partial reports whether the budget was cut short (context expiry or
// close) and the estimate is built from fewer samples than requested.
// Only queries opted into AllowPartial can observe true.
func (r *Rows) Partial() bool { return r.partial }

// EarlyStopped reports that a served ranked query (ORDER BY P DESC
// LIMIT k) finished before its sample budget because the confidence
// intervals already separated the top k from the rest — the answer's
// membership could no longer change, so the engine returned the
// remaining budget to the pool.
func (r *Rows) EarlyStopped() bool { return r.earlyStop }

// Cached reports whether the answer was served from the result cache.
func (r *Rows) Cached() bool { return r.cached }

// Elapsed returns the evaluation wall time. Cache hits report the
// original evaluation's time, not the lookup's — check Cached to tell
// them apart.
func (r *Rows) Elapsed() time.Duration { return r.elapsed }

// Trace returns the span breakdown of this evaluation, or nil unless the
// query opted in with the Trace option (in served mode the engine's
// trace sampler may also attach one). The trace is immutable.
func (r *Rows) Trace() *QueryTrace { return r.trace }
