package factordb

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// jsonLogger builds the machine-readable logger the daemon's
// -log-format json flag would: JSON records, all levels.
func jsonLogger(w io.Writer) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: slog.LevelDebug}))
}

// TestMetricsContentType pins the exposition handler's exact Content-Type:
// Prometheus text format 0.0.4. Scrapers negotiate on the version
// parameter, so this header is a wire contract, not a default.
func TestMetricsContentType(t *testing.T) {
	db := openServedCorefDB(t)
	srv := httptest.NewServer(db.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	const want = "text/plain; version=0.0.4; charset=utf-8"
	if got := resp.Header.Get("Content-Type"); got != want {
		t.Errorf("/metrics Content-Type = %q, want %q", got, want)
	}
}

// TestExplainAnalyzeFacade drives EXPLAIN ANALYZE through the facade in
// both engines: the annotated plan flows back as ordinary PLAN rows with
// per-operator actual-row counts, the chain count, and the plan-cache
// line; the root operator's actual rows match what the plain query
// returns. EXPLAIN ANALYZE of DML is refused — a write cannot be
// executed speculatively.
func TestExplainAnalyzeFacade(t *testing.T) {
	analyze := func(t *testing.T, db *DB, sql string) []string {
		t.Helper()
		rows, err := db.Query(context.Background(), sql)
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		if cols := rows.Columns(); len(cols) != 1 || cols[0] != "PLAN" {
			t.Fatalf("EXPLAIN ANALYZE columns = %v, want [PLAN]", cols)
		}
		var lines []string
		for rows.Next() {
			var line string
			if err := rows.Scan(&line); err != nil {
				t.Fatal(err)
			}
			lines = append(lines, line)
		}
		return lines
	}
	check := func(t *testing.T, db *DB, wantChains string) {
		t.Helper()
		const target = `SELECT STRING FROM MENTION WHERE MENTION_ID = 1`
		lines := analyze(t, db, "EXPLAIN ANALYZE "+target)
		if len(lines) < 4 {
			t.Fatalf("EXPLAIN ANALYZE returned %d lines: %v", len(lines), lines)
		}
		// The root operator reports actual rows normalized per run — the
		// WHERE on the key matches exactly one mention, same as the query.
		if !strings.Contains(lines[0], "actual rows=1 ") {
			t.Errorf("root operator line %q does not report actual rows=1", lines[0])
		}
		joined := strings.Join(lines, "\n")
		for _, want := range []string{
			"est rows=", "time=", "analyze: runs=",
			"plan fingerprint: qfp1:", wantChains, "plan cache: miss",
		} {
			if !strings.Contains(joined, want) {
				t.Errorf("EXPLAIN ANALYZE output lacks %q:\n%s", want, joined)
			}
		}
		// Second run compiles through the shared plan cache.
		if again := strings.Join(analyze(t, db, "EXPLAIN ANALYZE "+target), "\n"); !strings.Contains(again, "plan cache: hit") {
			t.Errorf("second EXPLAIN ANALYZE missed the plan cache:\n%s", again)
		}
		// DML cannot be analyzed: it would have to commit to measure.
		if _, err := db.Query(context.Background(), `EXPLAIN ANALYZE DELETE FROM MENTION`); err == nil ||
			!strings.Contains(err.Error(), "not supported") {
			t.Errorf("EXPLAIN ANALYZE DML = %v, want a not-supported error", err)
		}
	}
	t.Run("local", func(t *testing.T) {
		check(t, openCorefDB(t), "analyzed chains: 1")
	})
	t.Run("served", func(t *testing.T) {
		check(t, openCorefDB(t, WithMode(ModeServed), WithChains(2)), "analyzed chains: 2")
	})
}

// TestTraceparentHeader pins the W3C trace-context handshake on the HTTP
// transport: a well-formed inbound traceparent's trace-id is adopted —
// echoed on the response header and stamped into the returned trace —
// while a missing or malformed header gets a server-assigned ID instead.
func TestTraceparentHeader(t *testing.T) {
	for h, want := range map[string]string{
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01": "4bf92f3577b34da6a3ce929d0e0e4736",
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01": "4bf92f3577b34da6a3ce929d0e0e4736", // case-normalized
		"":                             "",
		"not-a-traceparent":            "",
		"00-short-00f067aa0ba902b7-01": "",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01": "", // all-zero forbidden
		"00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01": "", // non-hex
	} {
		if got := parseTraceparent(h); got != want {
			t.Errorf("parseTraceparent(%q) = %q, want %q", h, got, want)
		}
	}

	db := openServedCorefDB(t)
	srv := httptest.NewServer(db.Handler())
	defer srv.Close()

	post := func(path, body, traceparent string) (*http.Response, string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, srv.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if traceparent != "" {
			req.Header.Set("traceparent", traceparent)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		echo := resp.Header.Get("traceparent")
		parts := strings.Split(echo, "-")
		if len(parts) != 4 || parts[0] != "00" || len(parts[1]) != 32 || len(parts[2]) != 16 {
			t.Fatalf("response traceparent %q is not well-formed", echo)
		}
		return resp, parts[1]
	}

	const clientID = "4bf92f3577b34da6a3ce929d0e0e4736"
	clientTP := "00-" + clientID + "-00f067aa0ba902b7-01"

	// Query with a client traceparent: the trace-id is adopted end to end.
	resp, tid := post("/query",
		`{"sql": "SELECT STRING FROM MENTION WHERE MENTION_ID = 0", "samples": 2, "trace": true}`, clientTP)
	var qr struct {
		Trace *QueryTrace `json:"trace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if tid != clientID {
		t.Errorf("query response echoes trace-id %q, want the client's %q", tid, clientID)
	}
	if qr.Trace == nil || qr.Trace.TraceID != clientID {
		t.Errorf("query trace carries trace_id %v, want %q", qr.Trace, clientID)
	}

	// No header: the server assigns a fresh non-zero ID.
	resp, tid = post("/query", `{"sql": "SELECT STRING FROM MENTION WHERE MENTION_ID = 0", "samples": 2}`, "")
	resp.Body.Close()
	if tid == clientID || tid == strings.Repeat("0", 32) {
		t.Errorf("server-assigned trace-id %q, want a fresh non-zero one", tid)
	}

	// Exec with a client traceparent and tracing on: same adoption.
	resp, tid = post("/exec",
		`{"sql": "UPDATE MENTION SET STRING = 'TP' WHERE MENTION_ID = 0", "trace": true}`, clientTP)
	var er struct {
		Trace *QueryTrace `json:"trace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if tid != clientID {
		t.Errorf("exec response echoes trace-id %q, want the client's %q", tid, clientID)
	}
	if er.Trace == nil || er.Trace.TraceID != clientID || er.Trace.Kind != "exec" {
		t.Errorf("exec trace = %+v, want kind exec with the client's trace_id", er.Trace)
	}
}

// TestExecTraceFacade pins ExecTrace through the facade on both engines:
// the result carries a contiguous exec-kind trace that also lands in
// RecentTraces, and untraced writes stay dark. The durable local
// database exercises the resolve/wal_append/fsync/apply span chain.
func TestExecTraceFacade(t *testing.T) {
	checkExecTrace := func(t *testing.T, tr *QueryTrace, wantSpans []string) {
		t.Helper()
		if tr == nil {
			t.Fatal("traced exec returned no trace")
		}
		if tr.Kind != "exec" || tr.Outcome != "ok" {
			t.Fatalf("trace kind=%q outcome=%q, want exec/ok", tr.Kind, tr.Outcome)
		}
		if len(tr.TraceID) != 32 {
			t.Fatalf("trace_id %q is not 32 hex chars", tr.TraceID)
		}
		have := map[string]bool{}
		var sum int64
		for i, s := range tr.Spans {
			have[s.Name] = true
			if i > 0 {
				prev := tr.Spans[i-1]
				if s.StartNS != prev.StartNS+prev.DurNS {
					t.Fatalf("span %q starts at %d, previous ended at %d",
						s.Name, s.StartNS, prev.StartNS+prev.DurNS)
				}
			}
			sum += s.DurNS
		}
		if got := sum + tr.Spans[0].StartNS; got != tr.WallNS {
			t.Fatalf("spans tile %dns of %dns wall time", got, tr.WallNS)
		}
		for _, name := range wantSpans {
			if !have[name] {
				t.Errorf("exec trace is missing span %q (have %+v)", name, tr.Spans)
			}
		}
	}
	t.Run("served", func(t *testing.T) {
		db := openServedCorefDB(t)
		res, err := db.Exec(context.Background(),
			`UPDATE MENTION SET STRING = 'T1' WHERE MENTION_ID = 1`, ExecTrace())
		if err != nil {
			t.Fatal(err)
		}
		checkExecTrace(t, res.Trace, []string{"compile", "resolve", "fanout", "burn_in", "republish", "cache_invalidate"})
		found := false
		for _, rt := range db.RecentTraces() {
			if rt.TraceID == res.Trace.TraceID {
				found = true
			}
		}
		if !found {
			t.Error("served exec trace did not land in RecentTraces")
		}
		// Untraced writes stay dark.
		res2, err := db.Exec(context.Background(), `UPDATE MENTION SET STRING = 'T2' WHERE MENTION_ID = 1`)
		if err != nil {
			t.Fatal(err)
		}
		if res2.Trace != nil {
			t.Errorf("untraced exec carries a trace: %+v", res2.Trace)
		}
	})
	t.Run("durableLocal", func(t *testing.T) {
		db, err := Open(durableNER(), durableOpts(t.TempDir())...)
		if err != nil {
			t.Fatal(err)
		}
		defer db.Close()
		res, err := db.Exec(context.Background(),
			`UPDATE TOKEN SET STRING = 'traced' WHERE TOK_ID = 1`,
			ExecTrace(), ExecTraceID(strings.Repeat("cd", 16)))
		if err != nil {
			t.Fatal(err)
		}
		checkExecTrace(t, res.Trace, []string{"compile", "resolve", "wal_append", "fsync", "apply"})
		if res.Trace.TraceID != strings.Repeat("cd", 16) {
			t.Errorf("trace_id %q, want the propagated one", res.Trace.TraceID)
		}
		if db.RecentTraces()[0].TraceID != res.Trace.TraceID {
			t.Error("local exec trace did not lead RecentTraces")
		}
	})
}

// syncBuffer serializes writes so the slog handler can be drained safely
// while the database may still be logging.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) lines(t *testing.T) []map[string]any {
	t.Helper()
	b.mu.Lock()
	raw := b.buf.String()
	b.mu.Unlock()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(raw), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %q (%v)", line, err)
		}
		out = append(out, rec)
	}
	return out
}

func recordsOf(recs []map[string]any, msg string) []map[string]any {
	var out []map[string]any
	for _, r := range recs {
		if r["msg"] == msg {
			out = append(out, r)
		}
	}
	return out
}

// TestSlowQueryLogAndAudit arms the slow-query log with a threshold every
// operation crosses and checks the two record families end to end on both
// engines: slow_query records carry trace ID, kind, outcome, wall time
// and span breakdown — and their trace IDs resolve in RecentTraces even
// though the operations never opted into tracing — while every write
// leaves a write.audit record.
func TestSlowQueryLogAndAudit(t *testing.T) {
	check := func(t *testing.T, db *DB, buf *syncBuffer, canExec bool) {
		t.Helper()
		ctx := context.Background()
		rows, err := db.Query(ctx, `SELECT STRING FROM MENTION WHERE MENTION_ID = 0`, Samples(2), NoCache())
		if err != nil {
			t.Fatal(err)
		}
		rows.Close()
		if canExec {
			if _, err := db.Exec(ctx, `UPDATE MENTION SET STRING = 'SLOW' WHERE MENTION_ID = 0`); err != nil {
				t.Fatal(err)
			}
		}

		recs := buf.lines(t)
		slow := recordsOf(recs, "slow_query")
		if len(slow) == 0 {
			t.Fatal("no slow_query records with a 1ns threshold")
		}
		kinds := map[string]bool{}
		for _, r := range slow {
			tid, _ := r["trace_id"].(string)
			if len(tid) != 32 {
				t.Errorf("slow_query trace_id %q is not 32 hex chars", tid)
			}
			kind, _ := r["kind"].(string)
			kinds[kind] = true
			if r["sql"] == "" || r["outcome"] == "" {
				t.Errorf("slow_query record incomplete: %v", r)
			}
			wall, _ := r["wall_ns"].(float64)
			thr, _ := r["threshold_ns"].(float64)
			if thr <= 0 || wall < thr {
				t.Errorf("slow_query wall_ns=%v threshold_ns=%v", wall, thr)
			}
			spans, _ := r["span_ns"].(map[string]any)
			if len(spans) == 0 {
				t.Errorf("slow_query record has no span_ns breakdown: %v", r)
			}
			// The log's trace ID must resolve on /debug/traces.
			found := false
			for _, rt := range db.RecentTraces() {
				if rt.TraceID == tid {
					found = true
				}
			}
			if !found {
				t.Errorf("slow_query trace_id %s does not resolve in RecentTraces", tid)
			}
		}
		if !kinds["query"] {
			t.Errorf("no query-kind slow_query record (kinds %v)", kinds)
		}
		if canExec {
			if !kinds["exec"] {
				t.Errorf("no exec-kind slow_query record (kinds %v)", kinds)
			}
			audits := recordsOf(recs, "write.audit")
			if len(audits) == 0 {
				t.Fatal("write left no write.audit record")
			}
			a := audits[len(audits)-1]
			if a["outcome"] != "ok" || a["rows_affected"].(float64) != 1 || a["epoch"].(float64) < 1 {
				t.Errorf("write.audit record = %v, want ok/1 row/epoch >= 1", a)
			}
		}
	}
	t.Run("served", func(t *testing.T) {
		buf := &syncBuffer{}
		db := openCorefDB(t, WithMode(ModeServed), WithChains(1),
			WithLogger(jsonLogger(buf)), WithSlowQueryLog(time.Nanosecond))
		check(t, db, buf, true)
	})
	t.Run("local", func(t *testing.T) {
		buf := &syncBuffer{}
		db := openCorefDB(t, WithLogger(jsonLogger(buf)), WithSlowQueryLog(time.Nanosecond))
		check(t, db, buf, false) // local coref is read-only
	})
}

// TestStartupTraceAfterRecovery reopens a durable database and checks the
// startup trace: a recovery-kind trace on Status/statusz whose contiguous
// spans cover snapshot load and WAL replay, with the replayed-record
// count attached where the recovery report says it should be.
func TestStartupTraceAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(durableNER(), durableOpts(dir)...)
	if err != nil {
		t.Fatal(err)
	}
	if db.Status().StartupTrace == nil {
		t.Error("fresh durable open reports no startup trace")
	}
	execN(t, db, 2)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(durableNER(), durableOpts(dir)...)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	st := re.Status().StartupTrace
	if st == nil {
		t.Fatal("recovered database reports no startup trace")
	}
	if st.Kind != "recovery" || st.Outcome != "ok" {
		t.Fatalf("startup trace kind=%q outcome=%q, want recovery/ok", st.Kind, st.Outcome)
	}
	if len(st.TraceID) != 32 {
		t.Errorf("startup trace_id %q is not 32 hex chars", st.TraceID)
	}
	var sum int64
	names := map[string]map[string]string{}
	for i, s := range st.Spans {
		names[s.Name] = s.Attrs
		if i > 0 {
			prev := st.Spans[i-1]
			if s.StartNS != prev.StartNS+prev.DurNS {
				t.Errorf("span %q starts at %d, previous ended at %d", s.Name, s.StartNS, prev.StartNS+prev.DurNS)
			}
		}
		sum += s.DurNS
	}
	if sum != st.WallNS {
		t.Errorf("startup spans sum to %dns, wall is %dns", sum, st.WallNS)
	}
	if _, ok := names["snapshot_load"]; !ok {
		t.Errorf("startup trace has no snapshot_load span (have %+v)", st.Spans)
	}
	replay, ok := names["wal_replay"]
	if !ok {
		t.Fatalf("startup trace has no wal_replay span (have %+v)", st.Spans)
	}
	d := re.Durability()
	if want := "2"; replay["replayed_records"] != want || d.ReplayedRecords != 2 {
		t.Errorf("wal_replay attrs %v with durability %+v, want replayed_records=2 on both", replay, d)
	}

	// The same trace serves on /statusz.
	srv := httptest.NewServer(re.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got Status
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.StartupTrace == nil || got.StartupTrace.TraceID != st.TraceID {
		t.Errorf("/statusz startup trace = %+v, want the one with trace_id %s", got.StartupTrace, st.TraceID)
	}
}
