package factordb

import (
	"context"
	"fmt"
	"strings"
	"time"

	"factordb/internal/core"
	"factordb/internal/ra"
	"factordb/internal/relstore"
	"factordb/internal/sqlparse"
)

// explain answers an EXPLAIN <stmt> without sampling: it compiles the
// target through the shared plan cache (so an EXPLAIN warms the cache
// for the real query) and returns the diagnostic as ordinary Rows with
// a single PLAN column, one line per row — so EXPLAIN flows unchanged
// through the facade, the database/sql driver, and HTTP.
//
// For a SELECT the output is the canonical plan tree, both fingerprints
// (the canonical plan's and the schema-bound plan's), the result spec,
// the view-sharing decision, and whether the plan came from the cache.
// For DML it is the resolved mutation and the cache line.
func (db *DB) explain(ctx context.Context, sql string) (*Rows, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	stmt, err := sqlparse.ParseStatement(sql)
	if err != nil {
		db.countFailed()
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	if stmt.Explain == nil {
		// Unreachable: the caller routed here because IsExplain(sql).
		return nil, fmt.Errorf("%w: not an EXPLAIN statement", ErrBadQuery)
	}
	target := sqlparse.ExplainTarget(sql)
	var lines []string
	switch {
	case stmt.Analyze && stmt.Explain.Select == nil:
		err = fmt.Errorf("EXPLAIN ANALYZE of DML is not supported (a write cannot be executed speculatively)")
	case stmt.Explain.Select != nil && !stmt.Analyze:
		lines, err = db.explainQuery(target)
	case stmt.Explain.Select == nil:
		lines, err = db.explainMutation(target)
	default:
		// EXPLAIN ANALYZE executes the target, so its errors span the full
		// facade taxonomy (closed, overloaded, canceled) and arrive fully
		// mapped — no blanket ErrBadQuery wrap.
		lines, err = db.explainAnalyze(ctx, target)
		if err != nil {
			return nil, err
		}
	}
	if err != nil {
		db.countFailed()
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	cis := make([]core.TupleCI, len(lines))
	for i, line := range lines {
		cis[i] = core.TupleCI{
			Tuple: relstore.Tuple{relstore.String(line)},
			P:     1, Lo: 1, Hi: 1,
		}
	}
	return &Rows{
		cols:       []string{"PLAN"},
		cis:        cis,
		i:          -1,
		chains:     db.Chains(),
		epoch:      db.WriteEpoch(),
		confidence: db.opts.confidence,
		elapsed:    time.Since(start),
	}, nil
}

func (db *DB) explainQuery(target string) ([]string, error) {
	comp, hit, err := db.plans.CompileQuery(target)
	if err != nil {
		return nil, err
	}
	if hit && db.eng == nil {
		db.planHits.Inc()
	}
	lines := ra.Render(comp.Plan)
	lines = append(lines, "plan fingerprint: "+comp.Fingerprint)

	// The bound fingerprint keys the engine's shared-view registries. It
	// needs a schema to bind against; a fresh chain-world clone of the
	// prototype gives exactly the schema every chain binds with. The read
	// lock excludes a concurrent local-mode Exec mid-mutation (in served
	// mode the prototype is immutable after startup).
	db.writeMu.RLock()
	wl, _, werr := db.sys.NewChainWorld(0)
	db.writeMu.RUnlock()
	if werr != nil {
		lines = append(lines, "bound fingerprint: n/a ("+werr.Error()+")")
	} else if bound, berr := ra.Bind(wl.DB(), comp.Plan); berr != nil {
		lines = append(lines, "bound fingerprint: n/a ("+berr.Error()+")")
	} else {
		bfp := bound.Fingerprint()
		lines = append(lines, "bound fingerprint: "+bfp)
		if db.eng != nil {
			live, total := db.eng.LiveViewChains(bfp)
			if live > 0 {
				lines = append(lines, fmt.Sprintf(
					"view sharing: reuse — a view with this fingerprint is live on %d/%d chains", live, total))
			} else {
				lines = append(lines, fmt.Sprintf(
					"view sharing: fresh — no live view with this fingerprint on any of %d chains", total))
			}
		} else {
			lines = append(lines, "view sharing: n/a (local mode: each query samples a private view)")
		}
	}
	lines = append(lines, "result spec: "+specString(comp.Spec))
	lines = append(lines, "plan cache: "+hitMiss(hit))
	return lines, nil
}

// explainAnalyze is EXPLAIN ANALYZE SELECT: compile through the shared
// plan cache, execute the pushed-down pipeline once per chain with
// per-operator instrumentation, and render the annotated plan — actual vs
// estimated rows, per-operator self time and its share of total, and any
// pushdown residue. In served mode every chain runs the pipeline against
// its own world and the counters are merged; the local modes run it on a
// fresh clone of the prototype world.
func (db *DB) explainAnalyze(ctx context.Context, target string) ([]string, error) {
	comp, hit, err := db.plans.CompileQuery(target)
	if err != nil {
		db.countFailed()
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	if hit && db.eng == nil {
		db.planHits.Inc()
	}
	var st *ra.StreamStats
	if db.eng != nil {
		st, err = db.eng.Analyze(ctx, comp.Plan)
		if err != nil {
			return nil, mapServeErr(err)
		}
	} else {
		// Same locking discipline as a local query: the clone excludes a
		// concurrent Exec mid-mutation.
		db.writeMu.RLock()
		wl, _, werr := db.sys.NewChainWorld(0)
		db.writeMu.RUnlock()
		if werr != nil {
			return nil, werr
		}
		bound, berr := ra.Bind(wl.DB(), comp.Plan)
		if berr != nil {
			db.countFailed()
			return nil, fmt.Errorf("%w: %v", ErrBadQuery, berr)
		}
		it, _, stats, serr := ra.AnalyzeStream(bound)
		if serr != nil {
			db.countFailed()
			return nil, fmt.Errorf("%w: %v", ErrBadQuery, serr)
		}
		it(func(relstore.Tuple, int64) bool { return true })
		st = stats
	}
	lines := st.Render()
	lines = append(lines,
		"plan fingerprint: "+comp.Fingerprint,
		fmt.Sprintf("analyzed chains: %d", db.Chains()),
		"plan cache: "+hitMiss(hit))
	return lines, nil
}

func (db *DB) explainMutation(target string) ([]string, error) {
	mut, hit, err := db.plans.CompileMutation(target)
	if err != nil {
		return nil, err
	}
	if hit && db.eng == nil {
		db.planHits.Inc()
	}
	return []string{mut.String(), "plan cache: " + hitMiss(hit)}, nil
}

func hitMiss(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// specString renders the result-level ordering and truncation — the
// clauses applied to the merged probabilistic answer rather than inside
// the per-world plan.
func specString(spec ra.ResultSpec) string {
	if spec.IsDefault() {
		return "default (sort by P desc)"
	}
	var sb strings.Builder
	sb.WriteString("order by ")
	for i, o := range spec.Order {
		if i > 0 {
			sb.WriteString(", ")
		}
		if o.ByProb {
			sb.WriteString("P")
		} else {
			fmt.Fprintf(&sb, "column %d", o.Index)
		}
		if o.Desc {
			sb.WriteString(" desc")
		} else {
			sb.WriteString(" asc")
		}
	}
	if spec.Limit > 0 {
		fmt.Fprintf(&sb, "; limit %d", spec.Limit)
	}
	return sb.String()
}
