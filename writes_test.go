package factordb

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// openServedCorefDB opens a private served entity-resolution database —
// the cheap workload whose chain worlds live for the engine's lifetime,
// so it absorbs writes.
func openServedCorefDB(t testing.TB) *DB {
	t.Helper()
	return openCorefDB(t, WithMode(ModeServed), WithChains(1))
}

// TestExecFacadeServed drives the write path through the facade: an
// evidence correction is visible to the next query with certainty, with
// no reopen.
func TestExecFacadeServed(t *testing.T) {
	db := openServedCorefDB(t)
	ctx := context.Background()

	res, err := db.Exec(ctx, `UPDATE MENTION SET STRING = 'REVISED' WHERE MENTION_ID = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 1 || res.Epoch != 1 || res.Chains != 1 {
		t.Fatalf("exec result = %+v", res)
	}
	if db.WriteEpoch() != 1 {
		t.Errorf("WriteEpoch = %d", db.WriteEpoch())
	}
	rows, err := db.Query(ctx, `SELECT STRING FROM MENTION WHERE MENTION_ID = 1`, Samples(4))
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if !rows.Next() {
		t.Fatal("post-write query returned no tuples")
	}
	var s string
	if err := rows.Scan(&s); err != nil {
		t.Fatal(err)
	}
	if s != "REVISED" || rows.Prob() != 1 {
		t.Errorf("post-write answer (%q, %v), want (REVISED, 1)", s, rows.Prob())
	}
}

// TestExecErrors pins the facade's write-path error taxonomy: DML parse
// and resolve failures are ErrBadQuery; a workload that cannot absorb
// local writes is ErrReadOnly; a closed database is ErrClosed; queries
// handed to Exec (and DML handed to Query) point at the right API.
func TestExecErrors(t *testing.T) {
	ctx := context.Background()

	// Coref materializes worlds per query: no durable local world.
	local := openCorefDB(t)
	if _, err := local.Exec(ctx, `DELETE FROM MENTION`); !errors.Is(err, ErrReadOnly) {
		t.Errorf("local coref Exec = %v, want ErrReadOnly", err)
	}

	served := openServedCorefDB(t)
	if _, err := served.Exec(ctx, `UPDATE MENTION SET`); !errors.Is(err, ErrBadQuery) {
		t.Errorf("parse failure = %v, want ErrBadQuery", err)
	}
	if _, err := served.Exec(ctx, `DELETE FROM NO_SUCH_TABLE`); !errors.Is(err, ErrBadQuery) {
		t.Errorf("resolve failure = %v, want ErrBadQuery", err)
	}
	_, err := served.Exec(ctx, `SELECT STRING FROM MENTION`)
	if !errors.Is(err, ErrBadQuery) || !strings.Contains(err.Error(), "use Query") {
		t.Errorf("SELECT via Exec = %v, want ErrBadQuery pointing at Query", err)
	}
	_, err = served.Query(ctx, `DELETE FROM MENTION`)
	if !errors.Is(err, ErrBadQuery) || !strings.Contains(err.Error(), "use Exec") {
		t.Errorf("DML via Query = %v, want ErrBadQuery pointing at Exec", err)
	}

	lifecycle := openServedCorefDB(t)
	lifecycle.Close()
	if _, err := lifecycle.Exec(ctx, `DELETE FROM MENTION`); !errors.Is(err, ErrClosed) {
		t.Errorf("Exec after Close = %v, want ErrClosed", err)
	}
}

// TestHandlerExecHardening covers POST /exec's malformed-request paths —
// hardened exactly like /query: every bad body answers 400 without
// touching any chain's world, and DML over GET is rejected by method.
func TestHandlerExecHardening(t *testing.T) {
	db := openServedCorefDB(t)
	srv := httptest.NewServer(db.Handler())
	defer srv.Close()

	post := func(body string) (int, string) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/exec", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var er struct {
			Error string `json:"error"`
		}
		if resp.StatusCode != http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Error == "" {
				t.Errorf("error response for %.40q lacks an error message (%v)", body, err)
			}
		}
		return resp.StatusCode, er.Error
	}

	cases := []struct {
		name string
		body string
	}{
		{"broken JSON", `{"sql": `},
		{"not JSON at all", `DELETE FROM MENTION`},
		{"unknown field", `{"sql": "DELETE FROM MENTION", "smaples": 5}`},
		{"query-only field", `{"sql": "DELETE FROM MENTION", "samples": 5}`},
		{"trailing garbage", `{"sql": "DELETE FROM MENTION"} {"again": true}`},
		{"oversized body", `{"sql": "DELETE FROM MENTION", "pad": "` +
			strings.Repeat("x", MaxQueryBodyBytes) + `"}`},
		{"missing sql", `{}`},
		{"malformed DML", `{"sql": "UPDATE MENTION SET"}`},
		{"select via exec", `{"sql": "SELECT STRING FROM MENTION"}`},
	}
	for _, c := range cases {
		if got, _ := post(c.body); got != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, got)
		}
	}
	if db.WriteEpoch() != 0 {
		t.Errorf("malformed requests bumped the write epoch to %d", db.WriteEpoch())
	}

	// DML on GET: the method-qualified mux pattern answers 405.
	resp, err := http.Get(srv.URL + "/exec")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /exec status %d, want 405", resp.StatusCode)
	}

	// A well-formed mutation still works after all the rejects, and the
	// committed epoch shows up in /healthz.
	status, _ := post(`{"sql": "UPDATE MENTION SET STRING = 'VIA_HTTP' WHERE MENTION_ID = 0"}`)
	if status != http.StatusOK {
		t.Fatalf("well-formed exec: status %d, want 200", status)
	}
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hr healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hr.WriteEpoch != 1 {
		t.Errorf("healthz write_epoch = %d, want 1", hr.WriteEpoch)
	}
}

// TestHandlerExecReadOnly maps ErrReadOnly onto 501: the deployment
// cannot absorb this write, which is not the client's fault.
func TestHandlerExecReadOnly(t *testing.T) {
	db := openCorefDB(t) // local mode: no durable world
	srv := httptest.NewServer(db.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/exec", "application/json",
		strings.NewReader(`{"sql": "DELETE FROM MENTION"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("read-only /exec status %d, want 501", resp.StatusCode)
	}
}
