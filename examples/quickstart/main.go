// Quickstart: build a small probabilistic database over uncertain NER
// output, pose the paper's Query 1, and read back tuples with their
// probabilities — first with the naive evaluator, then with the
// materialized-view evaluator, confirming they estimate the same answer
// while the latter avoids rescanning the database per sample.
package main

import (
	"fmt"
	"log"
	"time"

	"factordb/internal/core"
	"factordb/internal/exp"
)

func main() {
	// 1. Build the system: synthetic corpus, skip-chain CRF trained with
	// SampleRank, and a TOKEN relation holding one possible world.
	sys, err := exp.BuildNER(exp.Config{NumTokens: 20000, Seed: 42, UseSkip: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sys.Describe())

	// 2. Ask for every string labeled B-PER, with probabilities.
	const sql = `SELECT STRING FROM TOKEN WHERE LABEL='B-PER'`
	fmt.Println("query:", sql)

	for _, mode := range []core.Mode{core.Naive, core.Materialized} {
		chain, err := sys.NewChain(mode, sql, 2000, 7)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		if err := chain.Evaluator.Run(100, nil); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s evaluator: 100 samples in %v\n", mode, time.Since(start).Round(time.Millisecond))
		for i, tp := range chain.Evaluator.Results() {
			if i >= 8 {
				break
			}
			fmt.Printf("  %-20s %.3f\n", tp.Tuple.String(), tp.P)
		}
	}
}
