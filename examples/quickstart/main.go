// Quickstart: open a small probabilistic database over uncertain NER
// output through the public factordb API, pose the paper's Query 1, and
// read back tuples with their probabilities — first with the naive
// evaluator, then with the materialized-view evaluator, confirming they
// estimate the same answer while the latter avoids rescanning the
// database per sample. The same database is also reachable through
// database/sql; see the sqldriver package.
package main

import (
	"context"
	"fmt"
	"log"

	"factordb"
)

func main() {
	ctx := context.Background()

	// 1. Pick the workload: synthetic corpus, skip-chain CRF trained
	// with SampleRank, and a TOKEN relation holding one possible world.
	model := factordb.NER(factordb.NERConfig{Tokens: 20000, Seed: 42})

	// 2. Ask for every string labeled B-PER, with probabilities.
	fmt.Println("query:", factordb.Query1)

	// A DB is bound to one evaluation strategy, so comparing modes means
	// one Open (and hence one model build + training run) per mode.
	for _, mode := range []factordb.Mode{factordb.ModeNaive, factordb.ModeMaterialized} {
		db, err := factordb.Open(model,
			factordb.WithMode(mode),
			factordb.WithSteps(2000),
			factordb.WithSeed(7),
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(db.Describe())

		rows, err := db.Query(ctx, factordb.Query1, factordb.Samples(100))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s evaluator: %d samples in %v\n", mode, rows.Samples(), rows.Elapsed().Round(1e6))
		n := 0
		for rows.Next() && n < 8 {
			var s string
			if err := rows.Scan(&s); err != nil {
				log.Fatal(err)
			}
			lo, hi := rows.CI()
			fmt.Printf("  %-20s %.3f [%.3f, %.3f]\n", s, rows.Prob(), lo, hi)
			n++
		}
		rows.Close()
		db.Close()
	}
}
