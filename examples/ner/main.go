// NER example: the paper's running application in more depth. Builds the
// skip-chain CRF and a plain linear chain over the same corpus, trains
// both with SampleRank, and compares their token accuracy under
// model-driven MCMC decoding. The skip edges are what make exact
// inference intractable; on real NER data they improve accuracy (Sutton
// & McCallum), while on this synthetic corpus the two are comparable —
// the interesting part is that MCMC decoding handles both identically.
// Finally the ambiguous-entity query (Query 4) runs against the
// skip-chain probabilistic database.
package main

import (
	"fmt"
	"log"

	"factordb/internal/core"
	"factordb/internal/exp"
	"factordb/internal/ie"
	"factordb/internal/mcmc"
)

func main() {
	const tokens = 30000
	corpus, err := ie.Generate(ie.DefaultGenConfig(tokens, 99))
	if err != nil {
		log.Fatal(err)
	}
	vocab := ie.BuildVocab(corpus)

	accuracy := func(useSkip bool) float64 {
		m := ie.NewModel(vocab, useSkip)
		trainer := ie.NewTagger(m, corpus, ie.LO)
		trainer.Train(400000, 1.0, 7)
		// Decode with a fresh model-driven MH walk from all-O: the walk
		// only sees the model, never the gold labels.
		decoder := ie.NewTagger(m, corpus, ie.LO)
		sampler := mcmc.NewSampler(decoder, 13)
		sampler.Run(20 * corpus.NumTokens)
		return decoder.Accuracy()
	}
	linear := accuracy(false)
	skip := accuracy(true)
	fmt.Printf("token accuracy under MCMC decoding: linear chain %.3f, skip chain %.3f\n", linear, skip)

	// Query 4 over the skip-chain probabilistic DB: people mentioned in
	// documents where "Boston" is an organization.
	sys, err := exp.BuildNER(exp.Config{NumTokens: tokens, Seed: 99, UseSkip: true})
	if err != nil {
		log.Fatal(err)
	}
	chain, err := sys.NewChain(core.Materialized, exp.Query4, 2000, 11)
	if err != nil {
		log.Fatal(err)
	}
	if err := chain.Evaluator.Run(200, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npersons co-occurring with Boston/B-ORG (Query 4):")
	res := chain.Evaluator.Results()
	if len(res) == 0 {
		fmt.Println("  (no qualifying worlds sampled)")
	}
	for i, tp := range res {
		if i >= 12 {
			break
		}
		fmt.Printf("  %-20s %.3f\n", tp.Tuple.String(), tp.P)
	}
}
