// Entity-resolution example (Figure 1, bottom row): mentions like
// "John Smith", "J. Smith" and "J. Simms" are clustered into entities by
// MCMC over a pairwise-cohesion factor graph, with the clustering written
// through to a MENTION relation. A self-join SQL query then asks, for
// each pair of mentions, the probability that they refer to the same
// entity — a query no closed representation system handles natively but
// which sampling answers for free.
package main

import (
	"fmt"
	"log"

	"factordb/internal/core"
	"factordb/internal/coref"
	"factordb/internal/relstore"
	"factordb/internal/sqlparse"
	"factordb/internal/world"
)

func main() {
	mentions, err := coref.Generate(coref.GenConfig{NumEntities: 6, MentionsPerEntity: 4, Seed: 17})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d mentions of %d entities\n", len(mentions), 6)

	db := relstore.NewDB()
	rows, err := coref.LoadMentions(db, mentions)
	if err != nil {
		log.Fatal(err)
	}
	state := coref.NewSingletonState(mentions)
	proposer := coref.NewMoveProposer(state, coref.DefaultModel())
	chLog := world.NewChangeLog(db)
	if err := proposer.BindDB(chLog, rows); err != nil {
		log.Fatal(err)
	}

	// Same-entity probability for every mention pair, via a self-join on
	// the hidden CLUSTER field.
	const sql = `SELECT M1.MENTION_ID, M2.MENTION_ID FROM MENTION M1, MENTION M2
 WHERE M1.CLUSTER = M2.CLUSTER AND M1.MENTION_ID < M2.MENTION_ID`
	plan, err := sqlparse.Compile(sql)
	if err != nil {
		log.Fatal(err)
	}
	ev, err := core.NewEvaluator(core.Materialized, chLog, proposer, plan, 500, 23)
	if err != nil {
		log.Fatal(err)
	}
	if err := ev.Run(400, nil); err != nil {
		log.Fatal(err)
	}

	p, r, f1 := state.PairwiseF1()
	fmt.Printf("final-world pairwise P/R/F1 vs gold: %.2f/%.2f/%.2f (%s)\n", p, r, f1, ev.Sampler())

	fmt.Println("\nmost confident coreferent pairs:")
	byStr := func(id int64) string { return mentions[id].Str }
	count := 0
	for _, tp := range ev.Results() {
		if tp.P < 0.5 || count >= 12 {
			break
		}
		a, b := tp.Tuple[0].AsInt(), tp.Tuple[1].AsInt()
		gold := " "
		if mentions[a].Gold == mentions[b].Gold {
			gold = "*"
		}
		fmt.Printf("  %s %-18s ~ %-18s %.3f\n", gold, byStr(a), byStr(b), tp.P)
		count++
	}
	fmt.Println("(* = same gold entity)")
}
