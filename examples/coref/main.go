// Entity-resolution example (Figure 1, bottom row): mentions like
// "John Smith", "J. Smith" and "J. Simms" are clustered into entities by
// MCMC over a pairwise-cohesion factor graph, with the clustering written
// through to a MENTION relation. A self-join SQL query — posed through
// the public facade exactly like the NER queries — then asks, for each
// pair of mentions, the probability that they refer to the same entity: a
// query no closed representation system handles natively but which
// sampling answers for free.
package main

import (
	"context"
	"fmt"
	"log"

	"factordb"
)

func main() {
	db, err := factordb.Open(
		factordb.Coref(factordb.CorefConfig{Entities: 6, MentionsPerEntity: 4, Seed: 17}),
		factordb.WithSteps(500),
		factordb.WithSeed(23),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	fmt.Println(db.Describe())

	// Same-entity probability for every mention pair, via a self-join on
	// the hidden CLUSTER field.
	const sql = `SELECT M1.STRING, M2.STRING FROM MENTION M1, MENTION M2
 WHERE M1.CLUSTER = M2.CLUSTER AND M1.MENTION_ID < M2.MENTION_ID`
	rows, err := db.Query(context.Background(), sql, factordb.Samples(400))
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()

	fmt.Printf("\nmost confident coreferent pairs (%d samples):\n", rows.Samples())
	count := 0
	for rows.Next() && count < 12 {
		if rows.Prob() < 0.5 {
			break
		}
		var a, b string
		if err := rows.Scan(&a, &b); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18s ~ %-18s %.3f\n", a, b, rows.Prob())
		count++
	}
}
