// Updates example: the paper's data-update story, live. Because the
// probabilistic database is one possible world plus a factor graph, an
// evidence correction is a plain SQL UPDATE: mutate the world, keep
// sampling, and the marginals re-equilibrate — no engine restart, no
// client-side recomputation, no lineage bookkeeping as in tuple-level
// probabilistic databases.
//
// The demo corrects a transcription error: a token in a document that
// never mentioned Boston is fixed to read "Boston". Query 4 — persons
// co-occurring with Boston labeled B-ORG — immediately starts seeing the
// corrected document: its person mentions enter the answer with honest
// marginals (the probability that the corrected token is labeled B-ORG
// and the person token B-PER under the model). Reverting the correction
// shifts the answer straight back.
package main

import (
	"context"
	"fmt"
	"log"

	"factordb"
)

func main() {
	ctx := context.Background()
	db, err := factordb.Open(
		factordb.NER(factordb.NERConfig{Tokens: 8000, Seed: 7}),
		factordb.WithMode(factordb.ModeServed),
		factordb.WithSteps(1000),
		factordb.WithSeed(11),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	fmt.Println(db.Describe())

	// Find the documents that already mention Boston, then pick a token
	// from some other document to "correct". Evidence columns are
	// deterministic, so these lookups return marginal-1 tuples.
	bostonDocs := map[int64]bool{}
	rows, err := db.Query(ctx, `SELECT DOC_ID FROM TOKEN WHERE STRING='Boston'`, factordb.Samples(2))
	if err != nil {
		log.Fatal(err)
	}
	for rows.Next() {
		var doc int64
		if err := rows.Scan(&doc); err != nil {
			log.Fatal(err)
		}
		bostonDocs[doc] = true
	}
	rows.Close()

	var tokID, docID int64 = -1, -1
	var oldString string
	rows, err = db.Query(ctx, `SELECT TOK_ID, DOC_ID, STRING FROM TOKEN`, factordb.Samples(2))
	if err != nil {
		log.Fatal(err)
	}
	for rows.Next() {
		var tok, doc int64
		var s string
		if err := rows.Scan(&tok, &doc, &s); err != nil {
			log.Fatal(err)
		}
		if !bostonDocs[doc] && tokID < 0 {
			tokID, docID, oldString = tok, doc, s
		}
	}
	rows.Close()
	if tokID < 0 {
		log.Fatal("every document already mentions Boston at this seed")
	}
	fmt.Printf("\ncorrection target: token %d in document %d currently reads %q\n", tokID, docID, oldString)

	baseline := query4(ctx, db)
	fmt.Printf("\nQuery 4 before the correction: %d answer tuples\n", len(baseline))

	// The evidence correction. Exec returns once every chain's world has
	// absorbed the write and re-equilibrated past its burn-in.
	res, err := db.Exec(ctx, fmt.Sprintf(`UPDATE TOKEN SET STRING = 'Boston' WHERE TOK_ID = %d`, tokID))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nUPDATE applied to %d chain world(s) in %v (data epoch %d)\n",
		res.Chains, res.Elapsed.Round(1e6), res.Epoch)

	corrected := query4(ctx, db)
	fmt.Printf("\nQuery 4 after the correction: %d answer tuples\n", len(corrected))
	fresh := 0
	for s, p := range corrected {
		if _, ok := baseline[s]; !ok {
			fmt.Printf("  new answer: %-20s p=%.3f  (person in the corrected document %d)\n", s, p, docID)
			fresh++
		}
	}
	if fresh == 0 {
		fmt.Println("  (no new tuples at this sample budget — the corrected token was rarely labeled B-ORG)")
	}

	// Revert the correction; the answer shifts straight back.
	if _, err := db.Exec(ctx, fmt.Sprintf(`UPDATE TOKEN SET STRING = '%s' WHERE TOK_ID = %d`, oldString, tokID)); err != nil {
		log.Fatal(err)
	}
	reverted := query4(ctx, db)
	fmt.Printf("\nQuery 4 after reverting: %d answer tuples (baseline had %d)\n", len(reverted), len(baseline))
}

// query4 returns Query 4's answer as tuple → marginal.
func query4(ctx context.Context, db *factordb.DB) map[string]float64 {
	rows, err := db.Query(ctx, factordb.Query4, factordb.Samples(200), factordb.NoCache())
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()
	out := map[string]float64{}
	for rows.Next() {
		var s string
		if err := rows.Scan(&s); err != nil {
			log.Fatal(err)
		}
		out[s] = rows.Prob()
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
	return out
}
