// Top-k example: MystiQ-style ranked answers (Section 2's related work)
// fall out of the sampling representation for free — Rows iterates
// tuples by descending estimated marginal with confidence intervals
// attached. This example also demonstrates the query-targeted proposal
// distribution suggested as future work in the paper: Query 4 only reads
// documents containing "Boston", so the model is opened with a target
// substring and the sampler is restricted to them, converging on the
// relevant marginals with a fraction of the proposals.
package main

import (
	"context"
	"fmt"
	"log"

	"factordb"
)

func main() {
	db, err := factordb.Open(
		factordb.NER(factordb.NERConfig{Tokens: 30000, Seed: 7, TargetSubstring: "Boston"}),
		factordb.WithSteps(2000),
		factordb.WithSeed(11),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	fmt.Println(db.Describe())

	rows, err := db.Query(context.Background(), factordb.Query4, factordb.Samples(500))
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()

	fmt.Println("\ntop-10 persons co-occurring with Boston/B-ORG (p with 95% CI):")
	shown, confident := 0, 0
	for rows.Next() {
		if rows.Prob() > 0.9 {
			confident++
		}
		if shown < 10 {
			var s string
			if err := rows.Scan(&s); err != nil {
				log.Fatal(err)
			}
			lo, hi := rows.CI()
			fmt.Printf("  %-20s %.3f [%.3f, %.3f]\n", s, rows.Prob(), lo, hi)
			shown++
		}
	}
	fmt.Printf("\n%d answer tuples exceed the 0.9 threshold\n", confident)
}
