// Top-k example: MystiQ-style ranked answers (Section 2's related work)
// as first-class SQL — ORDER BY the P pseudo-column (the tuple's
// estimated marginal) with a LIMIT, ranked and truncated by the engine
// itself rather than in application code. This example also demonstrates
// the query-targeted proposal distribution suggested as future work in
// the paper: Query 4 only reads documents containing "Boston", so the
// model is opened with a target substring and the sampler is restricted
// to them, converging on the relevant marginals with a fraction of the
// proposals.
package main

import (
	"context"
	"fmt"
	"log"

	"factordb"
)

func main() {
	db, err := factordb.Open(
		factordb.NER(factordb.NERConfig{Tokens: 30000, Seed: 7, TargetSubstring: "Boston"}),
		factordb.WithSteps(2000),
		factordb.WithSeed(11),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	fmt.Println(db.Describe())

	// Query4Ranked is Query 4 plus "ORDER BY P DESC LIMIT 10": the rows
	// arrive already ranked by marginal and truncated to the top ten, so
	// there is nothing left to sort or filter client-side.
	rows, err := db.Query(context.Background(), factordb.Query4Ranked, factordb.Samples(500))
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()

	fmt.Println("\ntop-10 persons co-occurring with Boston/B-ORG (p with 95% CI):")
	for rows.Next() {
		var s string
		if err := rows.Scan(&s); err != nil {
			log.Fatal(err)
		}
		lo, hi := rows.CI()
		fmt.Printf("  %-20s %.3f [%.3f, %.3f]\n", s, rows.Prob(), lo, hi)
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nranked by %d samples across %d chain(s)\n", rows.Samples(), rows.Chains())
}
