// Top-k example: MystiQ-style ranked answers (Section 2's related work)
// fall out of the sampling representation for free — rank tuples by
// estimated marginal and attach Monte Carlo standard errors. This example
// also demonstrates the query-targeted proposal distribution suggested as
// future work in the paper: Query 4 only reads documents containing
// "Boston", so the sampler is restricted to them, converging on the
// relevant marginals with a fraction of the proposals.
package main

import (
	"fmt"
	"log"

	"factordb/internal/core"
	"factordb/internal/exp"
	"factordb/internal/ie"
)

func main() {
	sys, err := exp.BuildNER(exp.Config{NumTokens: 30000, Seed: 7, UseSkip: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sys.Describe())

	target := ie.DocsContaining(sys.Corpus, "Boston")
	fmt.Printf("Query 4 depends on %d of %d documents (those containing \"Boston\")\n",
		len(target), len(sys.Corpus.Docs))

	chain, err := sys.NewChain(core.Materialized, exp.Query4, 2000, 11)
	if err != nil {
		log.Fatal(err)
	}
	if len(target) > 0 {
		if err := chain.Tagger.TargetDocs(target); err != nil {
			log.Fatal(err)
		}
	}
	if err := chain.Evaluator.Run(500, nil); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ntop-10 persons co-occurring with Boston/B-ORG (p ± stderr):")
	for _, ts := range chain.Evaluator.Estimator().TopK(10) {
		fmt.Printf("  %-20s %.3f ± %.3f\n", ts.Tuple.String(), ts.P, ts.StdErr)
	}

	confident := chain.Evaluator.Estimator().Above(0.9)
	fmt.Printf("\n%d answer tuples exceed the 0.9 threshold\n", len(confident))
}
