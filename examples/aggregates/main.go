// Aggregates example: sampling-based evaluation handles arbitrary
// relational-algebra extensions without closing the representation under
// each operator (Section 5.5). Evaluates the paper's two aggregate
// queries — the global COUNT of person mentions (Query 2, whose answer
// distribution is the peaked histogram of Figure 7) and the correlated
// per-document count-equality query (Query 3).
package main

import (
	"fmt"
	"log"
	"strings"

	"factordb/internal/core"
	"factordb/internal/exp"
)

func main() {
	sys, err := exp.BuildNER(exp.Config{NumTokens: 40000, Seed: 31, UseSkip: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sys.Describe())

	// Query 2: distribution over the number of B-PER tokens.
	q2, err := sys.NewChain(core.Materialized, exp.Query2, 2000, 3)
	if err != nil {
		log.Fatal(err)
	}
	if err := q2.Evaluator.Run(400, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nQuery 2 — person mention count distribution:")
	for _, tp := range q2.Evaluator.Results() {
		bar := strings.Repeat("#", int(tp.P*120))
		fmt.Printf("  %6d  %.3f %s\n", tp.Tuple[0].AsInt(), tp.P, bar)
	}

	// Query 3: documents whose person and organization counts agree.
	q3, err := sys.NewChain(core.Materialized, exp.Query3, 2000, 5)
	if err != nil {
		log.Fatal(err)
	}
	if err := q3.Evaluator.Run(400, nil); err != nil {
		log.Fatal(err)
	}
	res := q3.Evaluator.Results()
	fmt.Printf("\nQuery 3 — documents with #PER = #ORG: %d candidates\n", len(res))
	for i, tp := range res {
		if i >= 10 {
			fmt.Printf("  ... (%d more)\n", len(res)-i)
			break
		}
		fmt.Printf("  doc %-6d %.3f\n", tp.Tuple[0].AsInt(), tp.P)
	}
}
