// Aggregates example: sampling-based evaluation handles arbitrary
// relational-algebra extensions without closing the representation under
// each operator (Section 5.5). Evaluates the paper's two aggregate
// queries through the public facade — the global COUNT of person
// mentions (Query 2, whose answer distribution is the peaked histogram
// of Figure 7) and the correlated per-document count-equality query
// (Query 3).
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"factordb"
)

func main() {
	ctx := context.Background()
	db, err := factordb.Open(
		factordb.NER(factordb.NERConfig{Tokens: 40000, Seed: 31}),
		factordb.WithSteps(2000),
		factordb.WithSeed(3),
		factordb.WithSamples(400),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	fmt.Println(db.Describe())

	// Query 2: distribution over the number of B-PER tokens.
	rows, err := db.Query(ctx, factordb.Query2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nQuery 2 — person mention count distribution:")
	for rows.Next() {
		var count int64
		if err := rows.Scan(&count); err != nil {
			log.Fatal(err)
		}
		bar := strings.Repeat("#", int(rows.Prob()*120))
		fmt.Printf("  %6d  %.3f %s\n", count, rows.Prob(), bar)
	}
	rows.Close()

	// Query 3: documents whose person and organization counts agree.
	rows, err = db.Query(ctx, factordb.Query3)
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()
	fmt.Printf("\nQuery 3 — documents with #PER = #ORG: %d candidates\n", rows.Len())
	n := 0
	for rows.Next() {
		if n >= 10 {
			fmt.Printf("  ... (%d more)\n", rows.Len()-n)
			break
		}
		var doc int64
		if err := rows.Scan(&doc); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  doc %-6d %.3f\n", doc, rows.Prob())
		n++
	}
}
