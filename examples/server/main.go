// Example server starts the serving engine in-process — no HTTP — and
// fires 8 concurrent SQL queries (the paper's Queries 1–4, twice each)
// against one shared trained world, printing per-query latency and the
// aggregate sampling throughput. Because every in-flight query registers
// a materialized view on every chain, the 8 queries share each chain's
// Metropolis-Hastings walk instead of paying for 8 private ones.
package main

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"factordb/internal/exp"
	"factordb/internal/serve"
)

func main() {
	fmt.Println("building and training a 20k-token NER world...")
	start := time.Now()
	sys, err := exp.BuildNER(exp.Config{NumTokens: 20000, Seed: 1, UseSkip: true})
	if err != nil {
		fail(err)
	}
	fmt.Printf("%s (in %v)\n", sys.Describe(), time.Since(start).Round(time.Millisecond))

	eng, err := serve.New(sys, serve.Config{Chains: 4, StepsPerSample: 1000, Seed: 7})
	if err != nil {
		fail(err)
	}
	defer eng.Close()
	fmt.Printf("engine up: %d chains\n\n", eng.Chains())

	queries := []string{
		exp.Query1, exp.Query2, exp.Query3, exp.Query4,
		exp.Query1, exp.Query2, exp.Query3, exp.Query4,
	}
	var wg sync.WaitGroup
	results := make([]*serve.Result, len(queries))
	wallStart := time.Now()
	for i, sql := range queries {
		wg.Add(1)
		go func(i int, sql string) {
			defer wg.Done()
			res, err := eng.Query(context.Background(), sql,
				serve.QueryOptions{Samples: 128, NoCache: true})
			if err != nil {
				fail(err)
			}
			results[i] = res
		}(i, sql)
	}
	wg.Wait()
	wall := time.Since(wallStart)

	var total int64
	for i, res := range results {
		total += res.Samples
		top := "(empty)"
		if len(res.Tuples) > 0 {
			t := res.Tuples[0]
			top = fmt.Sprintf("%v p=%.3f [%.3f, %.3f]", t.Values, t.P, t.Lo, t.Hi)
		}
		fmt.Printf("Q%-2d %7.1fms  %3d tuples  %3d samples  top: %s\n",
			i%4+1, float64(res.Elapsed.Microseconds())/1000, len(res.Tuples), res.Samples, top)
	}
	fmt.Printf("\n8 concurrent queries in %v wall: %d samples total, %.0f samples/s aggregate\n",
		wall.Round(time.Millisecond), total, float64(total)/wall.Seconds())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "server example:", err)
	os.Exit(1)
}
