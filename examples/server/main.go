// Example server opens the serving engine in-process — no HTTP — through
// the public facade and fires 8 concurrent SQL queries (the paper's
// Queries 1–4, twice each) against one shared trained world, printing
// per-query latency and the aggregate sampling throughput. Because every
// in-flight query registers a materialized view on every chain, the 8
// queries share each chain's Metropolis-Hastings walk instead of paying
// for 8 private ones.
package main

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"factordb"
)

func main() {
	fmt.Println("building and training a 20k-token NER world...")
	start := time.Now()
	db, err := factordb.Open(
		factordb.NER(factordb.NERConfig{Tokens: 20000, Seed: 1}),
		factordb.WithMode(factordb.ModeServed),
		factordb.WithChains(4),
		factordb.WithSteps(1000),
		factordb.WithSeed(7),
	)
	if err != nil {
		fail(err)
	}
	defer db.Close()
	fmt.Printf("%s (in %v)\n", db.Describe(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("engine up: %d chains\n\n", db.Chains())

	queries := []string{
		factordb.Query1, factordb.Query2, factordb.Query3, factordb.Query4,
		factordb.Query1, factordb.Query2, factordb.Query3, factordb.Query4,
	}
	var wg sync.WaitGroup
	results := make([]*factordb.Rows, len(queries))
	wallStart := time.Now()
	for i, sql := range queries {
		wg.Add(1)
		go func(i int, sql string) {
			defer wg.Done()
			rows, err := db.Query(context.Background(), sql,
				factordb.Samples(128), factordb.NoCache())
			if err != nil {
				fail(err)
			}
			results[i] = rows
		}(i, sql)
	}
	wg.Wait()
	wall := time.Since(wallStart)

	var total int64
	for i, rows := range results {
		total += rows.Samples()
		top := "(empty)"
		if rows.Next() {
			vals, err := rows.Row()
			if err != nil {
				fail(err)
			}
			lo, hi := rows.CI()
			top = fmt.Sprintf("%v p=%.3f [%.3f, %.3f]", vals, rows.Prob(), lo, hi)
		}
		fmt.Printf("Q%-2d %7.1fms  %3d tuples  %3d samples  top: %s\n",
			i%4+1, float64(rows.Elapsed().Microseconds())/1000, rows.Len(), rows.Samples(), top)
		rows.Close()
	}
	fmt.Printf("\n8 concurrent queries in %v wall: %d samples total, %.0f samples/s aggregate\n",
		wall.Round(time.Millisecond), total, float64(total)/wall.Seconds())
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "server example:", err)
	os.Exit(1)
}
