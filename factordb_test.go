package factordb

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"factordb/internal/core"
	"factordb/internal/exp"
)

// The facade tests share one small trained NER corpus configuration;
// the direct system and each facade DB built from it are trained
// identically (generation and SampleRank are deterministic in the seed),
// which is what makes exact facade-vs-direct comparisons possible.
const (
	testTokens     = 3000
	testTrainSteps = 20000
	testCorpusSeed = 5
	testThin       = 300
	testChainSeed  = 9
)

func testNERConfig() NERConfig {
	return NERConfig{Tokens: testTokens, Seed: testCorpusSeed, TrainSteps: testTrainSteps}
}

// directSystem is the reference exp.NERSystem, built once.
var (
	directOnce sync.Once
	directSys  *exp.NERSystem
	directErr  error
)

func directSystem(t testing.TB) *exp.NERSystem {
	t.Helper()
	directOnce.Do(func() {
		directSys, directErr = exp.BuildNER(exp.Config{
			NumTokens: testTokens, Seed: testCorpusSeed, TrainSteps: testTrainSteps, UseSkip: true,
		})
	})
	if directErr != nil {
		t.Fatal(directErr)
	}
	return directSys
}

// sharedDB returns the facade DB for a mode, built once per mode and
// shared across tests (training dominates test time). The served DB gets
// two chains. Tests must not Close a shared DB; lifecycle tests open
// their own cheap coref database instead.
var (
	dbOnce map[Mode]*sync.Once
	dbVal  = map[Mode]*DB{}
	dbErr  = map[Mode]error{}
	dbInit sync.Once
)

func sharedDB(t testing.TB, mode Mode) *DB {
	t.Helper()
	dbInit.Do(func() {
		dbOnce = map[Mode]*sync.Once{
			ModeNaive: new(sync.Once), ModeMaterialized: new(sync.Once), ModeServed: new(sync.Once),
		}
	})
	dbOnce[mode].Do(func() {
		opts := []Option{WithMode(mode), WithSteps(testThin), WithSeed(testChainSeed)}
		if mode == ModeServed {
			opts = append(opts, WithChains(2))
		}
		dbVal[mode], dbErr[mode] = Open(NER(testNERConfig()), opts...)
	})
	if dbErr[mode] != nil {
		t.Fatal(dbErr[mode])
	}
	return dbVal[mode]
}

// openCorefDB opens a private entity-resolution database — cheap to
// build (no training), used by lifecycle and error-path tests.
func openCorefDB(t testing.TB, opts ...Option) *DB {
	t.Helper()
	db, err := Open(Coref(CorefConfig{Entities: 5, MentionsPerEntity: 3, Seed: 17}),
		append([]Option{WithSteps(200), WithSeed(23)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// TestFacadeMatchesDirectEvaluator is the central equivalence property of
// the API redesign: on the paper's Query 1, the facade in both local
// modes returns bitwise the same marginals as wiring up a core.Evaluator
// by hand with the same corpus, thinning interval, seed and budget.
func TestFacadeMatchesDirectEvaluator(t *testing.T) {
	const samples = 40
	sys := directSystem(t)
	for _, mode := range []Mode{ModeNaive, ModeMaterialized} {
		t.Run(mode.String(), func(t *testing.T) {
			db := sharedDB(t, mode)
			rows, err := db.Query(context.Background(), Query1, Samples(samples))
			if err != nil {
				t.Fatal(err)
			}
			defer rows.Close()
			if rows.Samples() != samples {
				t.Fatalf("facade collected %d samples, want %d", rows.Samples(), samples)
			}

			coreMode := core.Naive
			if mode == ModeMaterialized {
				coreMode = core.Materialized
			}
			ch, err := sys.NewChain(coreMode, exp.Query1, testThin, testChainSeed)
			if err != nil {
				t.Fatal(err)
			}
			if err := ch.Evaluator.Run(samples, nil); err != nil {
				t.Fatal(err)
			}
			want := ch.Evaluator.Results()
			if rows.Len() != len(want) {
				t.Fatalf("facade answered %d tuples, evaluator %d", rows.Len(), len(want))
			}
			if len(want) == 0 {
				t.Fatal("degenerate test: Query 1 returned no tuples")
			}
			for i := 0; rows.Next(); i++ {
				var s string
				if err := rows.Scan(&s); err != nil {
					t.Fatal(err)
				}
				if s != want[i].Tuple[0].AsString() || rows.Prob() != want[i].P {
					t.Errorf("tuple %d: facade (%v, %v) vs evaluator (%v, %v)",
						i, s, rows.Prob(), want[i].Tuple[0].AsString(), want[i].P)
				}
				lo, hi := rows.CI()
				if lo > rows.Prob() || hi < rows.Prob() || lo < 0 || hi > 1 {
					t.Errorf("tuple %d: malformed interval [%v, %v] around %v", i, lo, hi, rows.Prob())
				}
			}
		})
	}
}

// TestRankedQueryEquivalence is the ranked-query acceptance property:
// SELECT ... ORDER BY P DESC LIMIT k returns exactly the prefix of the
// fetch-all answer (which is sorted by descending marginal), with
// identical tuples and marginals — the SQL replaces the client-side
// over-fetch-and-sort pattern losslessly. Local modes re-walk the same
// seeded chain per query, so the comparison is exact.
func TestRankedQueryEquivalence(t *testing.T) {
	const samples = 40
	const k = 3
	db := sharedDB(t, ModeMaterialized)
	ctx := context.Background()

	full, err := db.Query(ctx, Query1, Samples(samples))
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	type ans struct {
		s string
		p float64
	}
	var baseline []ans
	for full.Next() {
		var s string
		if err := full.Scan(&s); err != nil {
			t.Fatal(err)
		}
		baseline = append(baseline, ans{s, full.Prob()})
	}
	if len(baseline) <= k {
		t.Fatalf("degenerate corpus: only %d answer tuples", len(baseline))
	}

	ranked, err := db.Query(ctx, Query1+" ORDER BY P DESC LIMIT 3", Samples(samples))
	if err != nil {
		t.Fatal(err)
	}
	defer ranked.Close()
	if ranked.Len() != k {
		t.Fatalf("LIMIT %d returned %d tuples", k, ranked.Len())
	}
	for i := 0; ranked.Next(); i++ {
		var s string
		if err := ranked.Scan(&s); err != nil {
			t.Fatal(err)
		}
		if s != baseline[i].s || ranked.Prob() != baseline[i].p {
			t.Errorf("rank %d: ranked (%q, %v) vs fetch-all (%q, %v)",
				i, s, ranked.Prob(), baseline[i].s, baseline[i].p)
		}
	}

	// Ascending order flips the ranking; it must still truncate and
	// come back non-decreasing in P.
	asc, err := db.Query(ctx, Query1+" ORDER BY P ASC LIMIT 2", Samples(samples))
	if err != nil {
		t.Fatal(err)
	}
	defer asc.Close()
	if asc.Len() != 2 {
		t.Fatalf("ASC LIMIT 2 returned %d tuples", asc.Len())
	}
	prev := -1.0
	for asc.Next() {
		if asc.Prob() < prev {
			t.Errorf("ascending ranking violated: %v after %v", asc.Prob(), prev)
		}
		prev = asc.Prob()
	}
}

// TestHavingThroughFacade smoke-tests the HAVING lowering end-to-end:
// a grouped aggregate filtered post-aggregation, ranked and truncated.
func TestHavingThroughFacade(t *testing.T) {
	db := sharedDB(t, ModeMaterialized)
	rows, err := db.Query(context.Background(),
		`SELECT DOC_ID, COUNT(*) AS N FROM TOKEN GROUP BY DOC_ID HAVING COUNT(*) > 3 ORDER BY P DESC LIMIT 5`,
		Samples(10))
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if rows.Len() > 5 {
		t.Fatalf("LIMIT 5 returned %d tuples", rows.Len())
	}
	if got := rows.Columns(); len(got) != 2 || got[0] != "DOC_ID" || got[1] != "N" {
		t.Errorf("columns = %v, want [DOC_ID N]", got)
	}
	for rows.Next() {
		var doc, n int64
		if err := rows.Scan(&doc, &n); err != nil {
			t.Fatal(err)
		}
		if n <= 3 {
			t.Errorf("HAVING COUNT(*) > 3 leaked a group with %d rows", n)
		}
	}
}

// TestNaiveMatchesMaterialized pins Algorithm 1 against Algorithm 3
// through the public API: with the same seed both modes follow the same
// walk, so the answers must agree exactly — the paper's equivalence,
// observable by any client of the facade.
func TestNaiveMatchesMaterialized(t *testing.T) {
	const samples = 25
	results := map[Mode]map[string]float64{}
	for _, mode := range []Mode{ModeNaive, ModeMaterialized} {
		db := sharedDB(t, mode)
		rows, err := db.Query(context.Background(), Query1, Samples(samples))
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]float64{}
		for rows.Next() {
			var s string
			if err := rows.Scan(&s); err != nil {
				t.Fatal(err)
			}
			got[s] = rows.Prob()
		}
		rows.Close()
		results[mode] = got
	}
	naive, mater := results[ModeNaive], results[ModeMaterialized]
	if len(naive) == 0 || len(naive) != len(mater) {
		t.Fatalf("tuple sets differ: naive %d, materialized %d", len(naive), len(mater))
	}
	for s, p := range naive {
		if mp, ok := mater[s]; !ok || mp != p {
			t.Errorf("tuple %q: naive p=%v, materialized p=%v (present=%v)", s, p, mp, ok)
		}
	}
}

func TestCloseSemantics(t *testing.T) {
	db := openCorefDB(t)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
	if _, err := db.Query(context.Background(), Query1); !errors.Is(err, ErrClosed) {
		t.Errorf("Query after Close = %v, want ErrClosed", err)
	}
}

func TestBadQueryErrors(t *testing.T) {
	db := openCorefDB(t)
	ctx := context.Background()

	// Parse errors carry their position through the facade verbatim.
	_, err := db.Query(ctx, "SELECT STRING, FROM TOKEN")
	if !errors.Is(err, ErrBadQuery) {
		t.Fatalf("parse failure = %v, want ErrBadQuery", err)
	}
	if !strings.Contains(err.Error(), "line 1 column 16") {
		t.Errorf("parse error lost its position: %v", err)
	}

	// Bind errors (unknown table) are bad queries too.
	if _, err := db.Query(ctx, "SELECT X FROM NO_SUCH_TABLE"); !errors.Is(err, ErrBadQuery) {
		t.Errorf("bind failure = %v, want ErrBadQuery", err)
	}

	// Confidence outside (0,1).
	if _, err := db.Query(ctx, PairQuery, Confidence(2)); !errors.Is(err, ErrBadQuery) {
		t.Errorf("confidence 2 = %v, want ErrBadQuery", err)
	}
}

func TestContextCancellation(t *testing.T) {
	db := openCorefDB(t)

	// Already-cancelled context fails before any work.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.Query(cancelled, PairQuery); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled ctx = %v, want context.Canceled", err)
	}

	// Cancelled mid-query: a budget far beyond the deadline. Without
	// AllowPartial the facade reports the context error.
	short, cancel2 := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel2()
	if _, err := db.Query(short, PairQuery, Samples(1<<30)); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("mid-query deadline = %v, want context.DeadlineExceeded", err)
	}

	// With AllowPartial the truncated estimate comes back instead.
	short2, cancel3 := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel3()
	rows, err := db.Query(short2, PairQuery, Samples(1<<30), AllowPartial())
	if err != nil {
		// Legal only if not even one sample landed before the deadline.
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("partial query = %v", err)
		}
		t.Skipf("no samples within the deadline on this machine: %v", err)
	}
	defer rows.Close()
	if !rows.Partial() {
		t.Error("truncated query not flagged partial")
	}
	if rows.Samples() <= 0 {
		t.Errorf("partial rows carry %d samples", rows.Samples())
	}
}

// TestServedMode exercises the facade over the concurrent engine: the
// same Query call, same Rows, backed by the chain pool.
func TestServedMode(t *testing.T) {
	db := sharedDB(t, ModeServed)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rows, err := db.Query(context.Background(), Query1, Samples(20), NoCache())
			if err != nil {
				errs[i] = err
				return
			}
			defer rows.Close()
			if rows.Chains() != 2 {
				t.Errorf("query %d served by %d chains, want 2", i, rows.Chains())
			}
			if rows.Samples() < 20 {
				t.Errorf("query %d: %d samples, want >= 20", i, rows.Samples())
			}
			for rows.Next() {
				if p := rows.Prob(); p < 0 || p > 1 {
					t.Errorf("query %d: probability %v out of range", i, p)
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("query %d: %v", i, err)
		}
	}

	// The result cache is reachable through the facade.
	r1, err := db.Query(context.Background(), Query1, Samples(10))
	if err != nil {
		t.Fatal(err)
	}
	r1.Close()
	r2, err := db.Query(context.Background(), Query1, Samples(10))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if !r2.Cached() {
		t.Error("second identical query missed the cache")
	}
}

// TestCorefWorkload opens the second workload through the same API.
func TestCorefWorkload(t *testing.T) {
	db := openCorefDB(t)
	rows, err := db.Query(context.Background(), PairQuery, Samples(50))
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if got := rows.Columns(); len(got) != 2 || got[0] != "MENTION_ID" || got[1] != "MENTION_ID" {
		t.Errorf("columns = %v", got)
	}
	seen := 0
	for rows.Next() {
		var a, b int64
		if err := rows.Scan(&a, &b); err != nil {
			t.Fatal(err)
		}
		if a >= b {
			t.Errorf("pair (%d, %d) violates MENTION_ID ordering", a, b)
		}
		if p := rows.Prob(); p <= 0 || p > 1 {
			t.Errorf("pair (%d, %d): probability %v out of range", a, b, p)
		}
		seen++
	}
	if seen == 0 {
		t.Error("no coreferent pairs sampled")
	}
}

func TestRowsScanContract(t *testing.T) {
	db := sharedDB(t, ModeMaterialized)
	rows, err := db.Query(context.Background(), Query2, Samples(10))
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if got := rows.Columns(); len(got) != 1 || got[0] != "PERSONS" {
		t.Errorf("columns = %v, want [PERSONS]", got)
	}
	if err := rows.Scan(new(int64)); err == nil {
		t.Error("Scan before Next succeeded")
	}
	if !rows.Next() {
		t.Fatal("empty Query 2 answer")
	}
	// The COUNT column is an int: int64, int, float64 and any all work;
	// bool does not.
	var i64 int64
	var f float64
	var anyv any
	if err := rows.Scan(&i64); err != nil {
		t.Errorf("Scan into *int64: %v", err)
	}
	if err := rows.Scan(&f); err != nil {
		t.Errorf("Scan into *float64: %v", err)
	}
	if err := rows.Scan(&anyv); err != nil {
		t.Errorf("Scan into *any: %v", err)
	}
	if err := rows.Scan(new(bool)); err == nil {
		t.Error("Scan int column into *bool succeeded")
	}
	if err := rows.Scan(new(int64), new(int64)); err == nil {
		t.Error("Scan with wrong arity succeeded")
	}
	if _, ok := anyv.(int64); !ok {
		t.Errorf("any destination got %T, want int64", anyv)
	}
	rows.Close()
	if rows.Next() {
		t.Error("Next after Close returned true")
	}
}

// TestHandlerRequestHardening covers the malformed-request paths of
// POST /query: every one must answer 400 without touching the engine —
// oversized bodies, unknown fields (a misspelled option silently ignored
// is worse than an error), trailing garbage, and broken JSON.
func TestHandlerRequestHardening(t *testing.T) {
	db := openCorefDB(t)
	srv := httptest.NewServer(db.Handler())
	defer srv.Close()

	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(srv.URL+"/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var er struct {
			Error string `json:"error"`
		}
		if resp.StatusCode != http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Error == "" {
				t.Errorf("error response for %.40q lacks an error message (%v)", body, err)
			}
		}
		return resp.StatusCode
	}

	cases := []struct {
		name string
		body string
	}{
		{"broken JSON", `{"sql": `},
		{"not JSON at all", `SELECT STRING FROM TOKEN`},
		{"unknown field", `{"sql": "SELECT MENTION_ID FROM MENTION", "smaples": 5}`},
		{"trailing garbage", `{"sql": "SELECT MENTION_ID FROM MENTION"} {"again": true}`},
		{"oversized body", `{"sql": "SELECT MENTION_ID FROM MENTION", "pad": "` +
			strings.Repeat("x", MaxQueryBodyBytes) + `"}`},
		{"missing sql", `{}`},
	}
	for _, c := range cases {
		if got := post(c.body); got != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.name, got)
		}
	}

	// A well-formed request still works after all the rejects.
	if got := post(`{"sql": "SELECT MENTION_ID FROM MENTION WHERE CLUSTER=0", "samples": 2}`); got != http.StatusOK {
		t.Errorf("well-formed request: status %d, want 200", got)
	}
}

// TestHandlerEndpoints covers the HTTP transport now served by the
// facade (moved here from internal/serve).
func TestHandlerEndpoints(t *testing.T) {
	db := sharedDB(t, ModeServed)
	srv := httptest.NewServer(db.Handler())
	defer srv.Close()

	// POST /query happy path.
	body := `{"sql": "SELECT STRING FROM TOKEN WHERE LABEL='B-PER'", "samples": 8}`
	resp, err := http.Post(srv.URL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query status %d", resp.StatusCode)
	}
	var qr struct {
		Columns []string    `json:"columns"`
		Tuples  []tupleJSON `json:"tuples"`
		Samples int64       `json:"samples"`
		Chains  int         `json:"chains"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if qr.Samples < 8 || qr.Chains != 2 {
		t.Errorf("samples = %d chains = %d", qr.Samples, qr.Chains)
	}
	if len(qr.Columns) != 1 || qr.Columns[0] != "STRING" {
		t.Errorf("columns = %v", qr.Columns)
	}
	for _, tp := range qr.Tuples {
		if len(tp.Values) != 1 || tp.P < 0 || tp.P > 1 || tp.Lo > tp.P || tp.Hi < tp.P {
			t.Errorf("malformed tuple %+v", tp)
		}
	}

	// Client errors.
	for _, bad := range []string{`not json`, `{}`, `{"sql": "SELECT"}`} {
		resp, err := http.Post(srv.URL+"/query", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", bad, resp.StatusCode)
		}
	}

	// GET /healthz.
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hr healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hr.Status != "ok" || hr.Chains != 2 || hr.Mode != "served" {
		t.Errorf("healthz = %d %+v", resp.StatusCode, hr)
	}

	// GET /metrics.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, want := range []string{
		"factordb_walk_steps_total",
		"factordb_query_samples_total",
		"factordb_queries_total",
		"factordb_acceptance_rate",
		"factordb_query_seconds_count",
		"factordb_chains 2",
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
