package factordb

import (
	"math"
	"time"
)

// Status is the introspection snapshot behind GET /statusz: what the
// database is doing right now. In served mode it covers the chain pool's
// sampler health, the live shared views with their refcounts and
// convergence diagnostics, and the result-cache occupancy; the local
// modes report the reduced subset that exists there (one private chain
// per query, no shared views, no cache).
type Status struct {
	Mode       string  `json:"mode"`
	Chains     int     `json:"chains"`
	Epoch      int64   `json:"epoch"`
	WriteEpoch int64   `json:"write_epoch"`
	UptimeS    float64 `json:"uptime_s"`
	InFlight   int64   `json:"queries_inflight"`

	Cache CacheStatus   `json:"cache"`
	Pool  []ChainStatus `json:"pool,omitempty"`
	Views []ViewHealth  `json:"views,omitempty"`

	// Durability is the snapshot+WAL store's state; null without
	// WithDataDir.
	Durability *DurabilityStatus `json:"durability,omitempty"`

	// StartupTrace is the recovery trace assembled at Open — snapshot
	// load, WAL replay and torn-tail truncation as contiguous spans with
	// the replayed-record counts as attributes. Null without WithDataDir.
	StartupTrace *QueryTrace `json:"startup_trace,omitempty"`
}

// CacheStatus reports served-mode result-cache occupancy.
type CacheStatus struct {
	Entries  int `json:"entries"`
	Capacity int `json:"capacity"`
}

// ChainStatus is one served chain's sampler health.
type ChainStatus struct {
	ID             int     `json:"id"`
	Epoch          int64   `json:"epoch"`
	Steps          int64   `json:"steps"`
	Accepted       int64   `json:"accepted"`
	AcceptanceRate float64 `json:"acceptance_rate"`
	// WriteGen counts the DML mutations this chain has absorbed; skew
	// across the pool means a write is mid-fan-out.
	WriteGen int64 `json:"write_gen"`
	Views    int64 `json:"views"`
}

// ViewHealth is one live shared view aggregated across the chain pool:
// its plan fingerprint, the total subscriber refcount, and the
// cross-chain convergence diagnostics over the view's per-sample answer
// cardinality. RHat and ESS are nil until enough observations accumulate
// (at least 4 per chain, 2+ split sequences).
type ViewHealth struct {
	Fingerprint string   `json:"fingerprint"`
	Subscribers int      `json:"subscribers"`
	Chains      int      `json:"chains"`
	MinSamples  int64    `json:"min_samples"`
	RHat        *float64 `json:"rhat"`
	ESS         *float64 `json:"ess"`
}

// finiteOrNil drops the diagnostics' NaN/Inf sentinels to nil for JSON.
func finiteOrNil(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

// Status assembles the introspection snapshot. It is safe to call
// concurrently with queries and writes; the fields are gathered from
// lock-free mirrors, so a snapshot taken during a write may show chains
// one generation apart — the skew ChainStatus.WriteGen exists to expose.
func (db *DB) Status() Status {
	st := Status{
		Mode:         db.opts.mode.String(),
		Chains:       db.Chains(),
		WriteEpoch:   db.WriteEpoch(),
		UptimeS:      time.Since(db.start).Seconds(),
		Durability:   db.Durability(),
		StartupTrace: db.startupTrace,
	}
	if db.eng == nil {
		return st
	}
	es := db.eng.Status()
	st.Epoch = es.Epoch
	st.InFlight = es.InFlight
	st.Cache = CacheStatus{Entries: es.Cache.Entries, Capacity: es.Cache.Capacity}
	st.Pool = make([]ChainStatus, 0, len(es.Pool))
	for _, c := range es.Pool {
		st.Pool = append(st.Pool, ChainStatus{
			ID:             c.ID,
			Epoch:          c.Epoch,
			Steps:          c.Steps,
			Accepted:       c.Accepted,
			AcceptanceRate: c.AcceptanceRate,
			WriteGen:       c.WriteGen,
			Views:          c.Views,
		})
	}
	st.Views = make([]ViewHealth, 0, len(es.Views))
	for _, v := range es.Views {
		st.Views = append(st.Views, ViewHealth{
			Fingerprint: v.Fingerprint,
			Subscribers: v.Subscribers,
			Chains:      v.Chains,
			MinSamples:  v.MinSamples,
			RHat:        finiteOrNil(float64(v.RHat)),
			ESS:         finiteOrNil(float64(v.ESS)),
		})
	}
	return st
}
