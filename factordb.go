package factordb

import (
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"factordb/internal/exp"
	"factordb/internal/metrics"
	"factordb/internal/serve"
	"factordb/internal/sqlparse"
	"factordb/internal/store"
)

// The paper's evaluation queries (Section 5), ready to pass to DB.Query
// against the NER workload, plus the entity-resolution pair query for the
// coref workload.
const (
	Query1       = exp.Query1       // persons: SELECT STRING FROM TOKEN WHERE LABEL='B-PER'
	Query2       = exp.Query2       // global person count (aggregate)
	Query3       = exp.Query3       // docs with #PER = #ORG (correlated subqueries)
	Query4       = exp.Query4       // persons co-occurring with Boston/B-ORG (join)
	Query4Ranked = exp.Query4Ranked // Query 4 top-10 by marginal (ORDER BY P DESC LIMIT 10)
	PairQuery    = exp.PairQuery    // coref: same-entity probability per mention pair
)

// Sentinel errors of the public API. All are matched with errors.Is;
// ErrBadQuery wraps the underlying parse, plan, or bind message verbatim
// (including line/column positions from the SQL front end).
var (
	// ErrClosed is returned by Query after Close, and by queries
	// truncated because the database closed underneath them.
	ErrClosed = errors.New("factordb: database is closed")
	// ErrBadQuery marks SQL compile and bind failures: client errors,
	// not engine faults.
	ErrBadQuery = errors.New("factordb: bad query")
	// ErrOverloaded is returned in served mode when admission control
	// sheds the query.
	ErrOverloaded = errors.New("factordb: overloaded")
)

// Mode selects the evaluation strategy behind a DB.
type Mode uint8

const (
	// ModeNaive re-runs the full query per sampled world (Algorithm 3).
	ModeNaive Mode = iota
	// ModeMaterialized keeps the answer as an incrementally maintained
	// view over the sampler's Δ⁻/Δ⁺ deltas (Algorithm 1) — the paper's
	// central efficiency result, and the default.
	ModeMaterialized
	// ModeServed runs the concurrent serving engine: a pool of parallel
	// MCMC chains whose walk-steps are shared by all in-flight queries.
	ModeServed
)

func (m Mode) String() string {
	switch m {
	case ModeNaive:
		return "naive"
	case ModeMaterialized:
		return "materialized"
	case ModeServed:
		return "served"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// ParseMode converts the flag/DSN spelling of a mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "naive":
		return ModeNaive, nil
	case "materialized":
		return ModeMaterialized, nil
	case "served":
		return ModeServed, nil
	}
	return 0, fmt.Errorf("factordb: unknown mode %q (want naive, materialized or served)", s)
}

// options collects Open-time settings; zero values take the documented
// defaults.
type options struct {
	mode          Mode
	chains        int
	steps         int
	samples       int
	seed          int64
	burnIn        int
	confidence    float64
	cacheSize     int
	cacheTTL      time.Duration
	maxConcurrent int
	maxQueued     int
	traceEvery    int
	planCacheSize int

	// Structured logging and the slow-query log (see log.go); nil logger
	// disables records, zero slowQuery disables the threshold.
	logger    *slog.Logger
	slowQuery time.Duration

	// Durability (see durable.go); empty dataDir disables it.
	dataDir         string
	fsync           FsyncPolicy
	checkpointOps   int64
	checkpointBytes int64
}

func defaultOptions() options {
	return options{
		mode:       ModeMaterialized,
		steps:      1000,
		samples:    128,
		seed:       1,
		confidence: 0.95,
	}
}

// Option configures Open.
type Option func(*options)

// WithMode selects the evaluation strategy (default ModeMaterialized).
func WithMode(m Mode) Option { return func(o *options) { o.mode = m } }

// WithChains sets the parallel MCMC chain count in ModeServed
// (default GOMAXPROCS, capped at 8). Ignored by the local modes, which
// evaluate each query on one private chain.
func WithChains(n int) Option { return func(o *options) { o.chains = n } }

// WithSteps sets k, the Metropolis-Hastings walk-steps between
// consecutive query samples — the thinning interval of Algorithms 1
// and 3 (default 1000).
func WithSteps(k int) Option { return func(o *options) { o.steps = k } }

// WithSamples sets the default per-query sample budget (default 128);
// individual queries override it with the Samples query option.
func WithSamples(n int) Option { return func(o *options) { o.samples = n } }

// WithSeed seeds the samplers: chain i of the served pool derives its
// seed from it, and the local modes use it directly (default 1).
func WithSeed(seed int64) Option { return func(o *options) { o.seed = seed } }

// WithBurnIn discards n walk-steps per chain before sampling (default 0).
func WithBurnIn(n int) Option { return func(o *options) { o.burnIn = n } }

// WithConfidence sets the default two-sided confidence-interval mass in
// (0,1) for Rows.CI (default 0.95).
func WithConfidence(c float64) Option { return func(o *options) { o.confidence = c } }

// WithCache sizes the served-mode result cache (entries; negative
// disables) and bounds entry staleness. Ignored by the local modes.
func WithCache(entries int, ttl time.Duration) Option {
	return func(o *options) { o.cacheSize, o.cacheTTL = entries, ttl }
}

// WithQueryLimits bounds served-mode admission: maxConcurrent queries
// evaluate at once, maxQueued wait for a slot, and anything beyond fails
// fast with ErrOverloaded. Ignored by the local modes.
func WithQueryLimits(maxConcurrent, maxQueued int) Option {
	return func(o *options) { o.maxConcurrent, o.maxQueued = maxConcurrent, maxQueued }
}

// WithTraceSampling makes the served engine trace every n-th query even
// without the client asking, so the recent-traces ring has material
// under steady load (default 0: client opt-in only). Ignored by the
// local modes.
func WithTraceSampling(every int) Option { return func(o *options) { o.traceEvery = every } }

// WithPlanCache sizes the raw-SQL→compiled-plan cache shared by every
// entry point of this DB — Query, Exec, Prepare, EXPLAIN, and in served
// mode the engine itself (default 256 entries). The cache keys on the
// exact SQL byte string and holds plans only — never data — so it needs
// no invalidation on writes.
func WithPlanCache(entries int) Option { return func(o *options) { o.planCacheSize = entries } }

// DB is a probabilistic database: one workload model opened under one
// evaluation strategy, answering SQL queries with per-tuple marginal
// probabilities and confidence intervals. It is safe for concurrent use.
// Close it to release the serving chains (served mode) and fail further
// queries with ErrClosed.
type DB struct {
	opts options
	sys  system
	name string

	eng *serve.Engine // ModeServed only

	// plans memoizes compiled statements by their exact SQL byte string.
	// One instance serves every entry point: the facade's Query/Exec/
	// Prepare/EXPLAIN paths and (in served mode) the engine's own compile
	// sites, so a statement warmed anywhere hits everywhere.
	plans *sqlparse.PlanCache

	// store is the durable snapshot+WAL backend (nil without WithDataDir).
	store store.Storage

	// Local-mode observability (the served engine keeps its own).
	reg         *metrics.Registry
	queries     *metrics.Counter
	failed      *metrics.Counter
	writes      *metrics.Counter
	planHits    *metrics.Counter
	latency     *metrics.Histogram
	execLatency *metrics.HistogramVec
	localTraces *localTraceRing
	traceID     atomic.Int64

	// Shared observability: the structured logger, the W3C trace-ID seed,
	// and the recovery trace assembled at Open (nil without a data dir).
	logger       *slog.Logger
	traceSeed    uint64
	startupTrace *QueryTrace

	// Local-mode write path: writeMu excludes Exec from queries cloning
	// the prototype world; writeEpoch counts committed writes. Served
	// mode delegates both to the engine.
	writeMu    sync.RWMutex
	writeEpoch atomic.Int64

	start time.Time

	mu     sync.Mutex
	closed bool
}

// Open builds (and, for the NER workload, trains) the model, then stands
// up the selected evaluation strategy over it. Expect Open to dominate
// startup cost; the returned DB answers queries until Close.
func Open(model Model, opts ...Option) (*DB, error) {
	o := defaultOptions()
	for _, f := range opts {
		f(&o)
	}
	if o.steps <= 0 {
		return nil, fmt.Errorf("factordb: steps per sample must be positive, got %d", o.steps)
	}
	if o.samples <= 0 {
		return nil, fmt.Errorf("factordb: sample budget must be positive, got %d", o.samples)
	}
	if o.confidence <= 0 || o.confidence >= 1 {
		return nil, fmt.Errorf("factordb: confidence %v outside (0,1)", o.confidence)
	}
	sys, err := model.build()
	if err != nil {
		return nil, err
	}
	db := &DB{opts: o, sys: sys, name: model.modelName(), start: time.Now()}
	db.plans = sqlparse.NewPlanCache(o.planCacheSize)
	db.logger = o.logger
	db.traceSeed = uint64(db.start.UnixNano()) | 1 // W3C forbids all-zero trace IDs

	// Recovery happens before any chain is cloned: openDurability swaps
	// the recovered world into the system, so the pool below is stocked
	// from post-replay evidence.
	st, err := openDurability(o, sys, db.name)
	if err != nil {
		return nil, err
	}
	db.store = st
	var recoveredEpoch int64
	if st != nil {
		rec := st.Recovery()
		recoveredEpoch = rec.Epoch
		db.startupTrace = db.recoveryTrace(rec)
	}

	if o.mode == ModeServed {
		burnIn := o.burnIn
		// A recovered world needs re-equilibration: the chains start from
		// evidence the sampler never walked, so give them one sampling
		// interval of burn-in unless the caller chose a budget explicitly.
		if recoveredEpoch > 0 && burnIn == 0 {
			burnIn = o.steps
		}
		cfg := serve.Config{
			Chains:               o.chains,
			StepsPerSample:       o.steps,
			BurnIn:               burnIn,
			Seed:                 o.seed,
			DefaultSamples:       o.samples,
			MaxConcurrentQueries: o.maxConcurrent,
			MaxQueuedQueries:     o.maxQueued,
			CacheSize:            o.cacheSize,
			CacheTTL:             o.cacheTTL,
			TraceEvery:           o.traceEvery,
			Plans:                db.plans,
			InitialDataEpoch:     recoveredEpoch,
			Logger:               o.logger,
			SlowQuery:            o.slowQuery,
		}
		if st != nil {
			cfg.WAL = st
		}
		eng, err := serve.New(sys, cfg)
		if err != nil {
			if st != nil {
				st.Close()
			}
			return nil, err
		}
		db.eng = eng
		if st != nil {
			registerStoreMetrics(st, eng.Metrics())
		}
		return db, nil
	}
	db.writeEpoch.Store(recoveredEpoch)
	db.reg = metrics.NewRegistry()
	db.queries = db.reg.NewCounter("factordb_queries_total", "queries evaluated")
	db.failed = db.reg.NewCounter("factordb_queries_failed_total", "queries that failed to compile or bind")
	db.writes = db.reg.NewCounter("factordb_writes_total", "DML mutations applied to the prototype world")
	db.planHits = db.reg.NewCounter("factordb_plan_cache_hits_total",
		"statements whose compiled plan was served from the raw-SQL plan cache")
	db.latency = db.reg.NewHistogram("factordb_query_seconds", "per-query latency in seconds", nil)
	db.execLatency = db.reg.NewHistogramVec("factordb_exec_seconds",
		"per-write latency in seconds, labeled by outcome", nil, "outcome")
	db.localTraces = newLocalTraceRing(64)
	db.reg.NewGaugeFunc("factordb_write_epoch", "data epoch: committed DML mutations since open",
		func() float64 { return float64(db.writeEpoch.Load()) })
	if st != nil {
		registerStoreMetrics(st, db.reg)
	}
	return db, nil
}

// Mode returns the evaluation strategy the DB was opened with.
func (db *DB) Mode() Mode { return db.opts.mode }

// Describe returns a one-line summary of the opened database.
func (db *DB) Describe() string {
	return fmt.Sprintf("%s [%s]", db.sys.Describe(), db.opts.mode)
}

// Chains reports the parallel chain count: the pool size in served mode,
// one otherwise (each local query walks a private chain).
func (db *DB) Chains() int {
	if db.eng != nil {
		return db.eng.Chains()
	}
	return 1
}

// Metrics exposes the DB's metric registry (the /metrics endpoint).
func (db *DB) Metrics() *metrics.Registry {
	if db.eng != nil {
		return db.eng.Metrics()
	}
	return db.reg
}

// Close releases the database. It is idempotent and safe to call
// concurrently with in-flight queries, which return promptly with either
// their partial estimate or ErrClosed.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.closed = true
	db.mu.Unlock()
	// Engine first: stopping the chains ends the write stream, so the
	// store's final flush below covers every committed record.
	if db.eng != nil {
		db.eng.Close()
	}
	if db.store != nil {
		return db.store.Close()
	}
	return nil
}

func (db *DB) isClosed() bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.closed
}
