module factordb

go 1.24
