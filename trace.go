package factordb

import (
	"sync"
	"time"

	"factordb/internal/serve"
)

// TraceSpan is one step of a traced query. StartNS is the offset from the
// trace's Begin; spans are contiguous and in order, so their durations
// tile the query's wall time (the first span opens within nanoseconds of
// Begin, and each later span begins the instant the previous one ends).
type TraceSpan struct {
	Name    string            `json:"name"`
	StartNS int64             `json:"start_ns"`
	DurNS   int64             `json:"dur_ns"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// QueryTrace is the span breakdown of one query evaluation, returned by
// Rows.Trace for queries that opted in with the Trace option (in served
// mode the engine's trace sampler may also pick queries). Span names and
// attribute keys are a stable contract — see the package documentation.
type QueryTrace struct {
	ID  int64  `json:"id"`
	SQL string `json:"sql"`
	// TraceID is the W3C trace-id correlating this trace with the
	// caller's distributed trace: the one the client propagated (the
	// TraceID option, or a traceparent header over HTTP), or one the
	// database assigned. Slow-query and write-audit log records carry the
	// same ID, so logs, /debug/traces and client traces cross-reference.
	TraceID string `json:"trace_id,omitempty"`
	// Kind distinguishes the trace families sharing the ring:
	// "query" (SELECT), "exec" (DML write) and "recovery" (startup).
	Kind    string      `json:"kind,omitempty"`
	Plan    string      `json:"plan_fingerprint,omitempty"`
	Begin   time.Time   `json:"begin"`
	WallNS  int64       `json:"wall_ns"`
	Outcome string      `json:"outcome"` // ok | cached | early_stop | partial | error
	Spans   []TraceSpan `json:"spans"`
}

// traceFromServe converts the engine's trace into the public mirror.
func traceFromServe(t *serve.QueryTrace) *QueryTrace {
	if t == nil {
		return nil
	}
	out := &QueryTrace{
		ID:      t.ID,
		SQL:     t.SQL,
		TraceID: t.TraceID,
		Kind:    t.Kind,
		Plan:    t.Plan,
		Begin:   t.Begin,
		WallNS:  t.WallNS,
		Outcome: t.Outcome,
		Spans:   make([]TraceSpan, len(t.Spans)),
	}
	for i, s := range t.Spans {
		out.Spans[i] = TraceSpan{Name: s.Name, StartNS: s.StartNS, DurNS: s.DurNS, Attrs: s.Attrs}
	}
	return out
}

// localTrace builds a QueryTrace for the local evaluation modes, with the
// same contiguous-span discipline as the served engine's tracer. All
// methods are safe on a nil receiver (tracing disabled).
type localTrace struct {
	qt    QueryTrace
	begin time.Time
	open  bool
	start time.Time

	// publish marks a trace the caller asked for: it is attached to the
	// result. A trace created only because the slow-query log is armed
	// stays private — ringed when slow, but never returned.
	publish bool
}

func newLocalTrace(id int64, sql string, begin time.Time) *localTrace {
	return &localTrace{qt: QueryTrace{ID: id, SQL: sql, Begin: begin}, begin: begin, start: begin}
}

func (t *localTrace) span(name string) {
	if t == nil {
		return
	}
	now := time.Now()
	t.closeSpan(now)
	t.qt.Spans = append(t.qt.Spans, TraceSpan{Name: name, StartNS: now.Sub(t.begin).Nanoseconds()})
	t.open = true
	t.start = now
}

func (t *localTrace) closeSpan(now time.Time) {
	if !t.open {
		return
	}
	s := &t.qt.Spans[len(t.qt.Spans)-1]
	s.DurNS = now.Sub(t.start).Nanoseconds()
	t.open = false
}

// splitTail carves the trailing tailNS of the open span into its own
// contiguous span named name — how the fsync portion of wal_append is
// reported after the fact, once the store has said how long it took.
// The carved span stays open with its start backdated by tailNS, so the
// next span (or finish) closes it at its own instant with no gap.
func (t *localTrace) splitTail(name string, tailNS int64) {
	if t == nil || !t.open {
		return
	}
	now := time.Now()
	t.closeSpan(now)
	s := &t.qt.Spans[len(t.qt.Spans)-1]
	if tailNS < 0 {
		tailNS = 0
	}
	if tailNS > s.DurNS {
		tailNS = s.DurNS
	}
	s.DurNS -= tailNS
	t.qt.Spans = append(t.qt.Spans, TraceSpan{Name: name, StartNS: s.StartNS + s.DurNS})
	t.open = true
	t.start = now.Add(-time.Duration(tailNS))
}

func (t *localTrace) attr(key, val string) {
	if t == nil || len(t.qt.Spans) == 0 {
		return
	}
	s := &t.qt.Spans[len(t.qt.Spans)-1]
	if s.Attrs == nil {
		s.Attrs = make(map[string]string, 2)
	}
	s.Attrs[key] = val
}

func (t *localTrace) setPlan(fp string) {
	if t == nil {
		return
	}
	t.qt.Plan = fp
}

func (t *localTrace) finish(outcome string) *QueryTrace {
	if t == nil {
		return nil
	}
	now := time.Now()
	t.closeSpan(now)
	t.qt.WallNS = now.Sub(t.begin).Nanoseconds()
	t.qt.Outcome = outcome
	return &t.qt
}

// localTraceRing keeps the local modes' recent traces for /debug/traces
// (the served engine keeps its own ring).
type localTraceRing struct {
	mu   sync.Mutex
	buf  []*QueryTrace
	next int
	n    int
}

func newLocalTraceRing(size int) *localTraceRing {
	if size < 1 {
		size = 1
	}
	return &localTraceRing{buf: make([]*QueryTrace, size)}
}

func (r *localTraceRing) add(t *QueryTrace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

func (r *localTraceRing) snapshot() []*QueryTrace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*QueryTrace, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// RecentTraces returns the most recent query traces, newest first:
// client-opted traces plus, in served mode, the engine trace sampler's
// picks. The ring size is fixed (64 entries); traces are immutable.
// GET /debug/traces on DebugHandler serves this list.
func (db *DB) RecentTraces() []*QueryTrace {
	if db.eng != nil {
		ts := db.eng.Traces()
		out := make([]*QueryTrace, 0, len(ts))
		for _, t := range ts {
			out = append(out, traceFromServe(t))
		}
		return out
	}
	return db.localTraces.snapshot()
}
