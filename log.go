package factordb

import (
	"fmt"
	"log/slog"
	"time"
)

// WithLogger installs a structured logger for the database's operational
// records: the slow-query log, write-audit records, and background store
// failures. All records go through log/slog, so the handler decides the
// format (JSON for machines, text for people) and the level floor. Nil
// (the default) disables structured logging.
func WithLogger(l *slog.Logger) Option { return func(o *options) { o.logger = l } }

// WithSlowQueryLog arms the slow-query log: any query or write whose wall
// time reaches threshold emits a "slow_query" record — fingerprint, trace
// ID, outcome, and the per-span time breakdown — through the WithLogger
// handler, and its full trace is kept in the recent-traces ring so
// GET /debug/traces can be cross-referenced by trace ID. Zero (the
// default) disables it.
func WithSlowQueryLog(threshold time.Duration) Option {
	return func(o *options) { o.slowQuery = threshold }
}

// genTraceID builds a W3C-shaped 32-hex trace ID: a per-process seed (so
// IDs from different opens never collide) plus the trace's ring ID. Used
// when the client did not propagate its own.
func (db *DB) genTraceID(id int64) string {
	return fmt.Sprintf("%016x%016x", db.traceSeed, uint64(id))
}

// newLocalQueryTrace decides tracing for one local-mode query: the caller
// opted in (publish), or the slow-query log is armed and needs the span
// breakdown in case the query turns out slow (private).
func (db *DB) newLocalQueryTrace(sql string, qo queryOptions) *localTrace {
	publish := qo.trace
	if !publish && db.opts.slowQuery <= 0 {
		return nil
	}
	tr := newLocalTrace(db.traceID.Add(1), sql, time.Now())
	tr.publish = publish
	tr.qt.Kind = "query"
	tr.qt.TraceID = qo.traceID
	if tr.qt.TraceID == "" {
		tr.qt.TraceID = db.genTraceID(tr.qt.ID)
	}
	return tr
}

// finishLocalTrace settles a local query trace: slow queries are logged
// and ringed regardless of opt-in (the log's trace IDs must resolve on
// /debug/traces), but only client-opted traces are returned for the
// result to carry.
func (db *DB) finishLocalTrace(tr *localTrace, outcome string) *QueryTrace {
	if tr == nil {
		return nil
	}
	qt := tr.finish(outcome)
	slow := db.opts.slowQuery > 0 && time.Duration(qt.WallNS) >= db.opts.slowQuery
	if slow {
		db.logSlowQuery(qt)
	}
	if tr.publish || slow {
		db.localTraces.add(qt)
	}
	if !tr.publish {
		return nil
	}
	return qt
}

// logSlowQuery emits one "slow_query" record: identity (SQL, plan
// fingerprint, trace ID), outcome, and the span breakdown summed per
// span name so retried phases aggregate instead of repeating.
func (db *DB) logSlowQuery(qt *QueryTrace) {
	if db.logger == nil {
		return
	}
	names := make([]string, 0, len(qt.Spans))
	sums := make(map[string]int64, len(qt.Spans))
	for _, s := range qt.Spans {
		if _, ok := sums[s.Name]; !ok {
			names = append(names, s.Name)
		}
		sums[s.Name] += s.DurNS
	}
	attrs := make([]any, 0, len(names))
	for _, n := range names {
		attrs = append(attrs, slog.Int64(n, sums[n]))
	}
	db.logger.Warn("slow_query",
		"trace_id", qt.TraceID,
		"kind", qt.Kind,
		"sql", qt.SQL,
		"fingerprint", qt.Plan,
		"outcome", qt.Outcome,
		"wall_ns", qt.WallNS,
		"threshold_ns", db.opts.slowQuery.Nanoseconds(),
		slog.Group("span_ns", attrs...),
	)
}

// finishLocalExec settles one local write's observability: trace ring and
// attachment, the outcome-labeled latency histogram, the slow-query check
// (writes share the threshold), and the write-audit record.
func (db *DB) finishLocalExec(sql string, res *ExecResult, outcome string, tr *localTrace, begin time.Time) {
	if tr != nil {
		qt := tr.finish(outcome)
		slow := db.opts.slowQuery > 0 && time.Duration(qt.WallNS) >= db.opts.slowQuery
		if slow {
			db.logSlowQuery(qt)
		}
		if tr.publish || slow {
			db.localTraces.add(qt)
		}
		if res != nil && tr.publish {
			res.Trace = qt
		}
	}
	if db.execLatency != nil {
		db.execLatency.With(outcome).Observe(time.Since(begin).Seconds())
	}
	db.auditLocalWrite(sql, res, outcome, tr)
}

// auditLocalWrite emits one "write.audit" record per local Exec —
// every write, traced or not, leaves an audit line when a logger is
// installed. Failed writes audit at Warn.
func (db *DB) auditLocalWrite(sql string, res *ExecResult, outcome string, tr *localTrace) {
	if db.logger == nil {
		return
	}
	attrs := []any{
		"outcome", outcome,
		"sql", sql,
	}
	if tr != nil {
		attrs = append(attrs, "trace_id", tr.qt.TraceID)
	}
	if res != nil {
		attrs = append(attrs,
			"epoch", res.Epoch,
			"rows_affected", res.RowsAffected,
			"elapsed_ns", res.Elapsed.Nanoseconds(),
		)
	} else {
		attrs = append(attrs, "epoch", db.writeEpoch.Load())
	}
	if outcome == "error" {
		db.logger.Warn("write.audit", attrs...)
		return
	}
	db.logger.Info("write.audit", attrs...)
}
