package factordb

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// TestMetricsExposition is the Prometheus text-format conformance check
// over a live served engine's /metrics page: HELP precedes TYPE for every
// family, family names are unique, histogram buckets are cumulative and
// monotone, and the +Inf bucket equals the count.
func TestMetricsExposition(t *testing.T) {
	db := sharedDB(t, ModeServed)
	// Evaluate one query first so the latency histogram has observations.
	rows, err := db.Query(context.Background(), Query1, Samples(4), NoCache())
	if err != nil {
		t.Fatal(err)
	}
	rows.Close()

	srv := httptest.NewServer(db.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}

	type family struct {
		help, typ bool
		samples   int
	}
	families := map[string]*family{}
	var lastHelp string
	// bucketsOf[name] collects the histogram's cumulative bucket counts
	// in exposition order; countOf[name] its _count sample.
	bucketsOf := map[string][]float64{}
	countOf := map[string]float64{}

	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			name := strings.Fields(line)[2]
			if families[name] != nil {
				t.Fatalf("duplicate HELP for %q", name)
			}
			families[name] = &family{help: true}
			lastHelp = name
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			name := strings.Fields(line)[2]
			f := families[name]
			if f == nil || !f.help {
				t.Fatalf("TYPE before HELP for %q", name)
			}
			if name != lastHelp {
				t.Fatalf("TYPE %q does not follow its own HELP (last HELP %q)", name, lastHelp)
			}
			f.typ = true
			continue
		}
		// Sample line: name{labels} value, attributed to its family by
		// stripping the label set and histogram/summary suffixes.
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
		metric := fields[0]
		val, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("unparsable value in %q: %v", line, err)
		}
		name := metric
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count", "_max"} {
			if trimmed := strings.TrimSuffix(name, suffix); trimmed != name && families[trimmed] != nil {
				base = trimmed
				break
			}
		}
		f := families[base]
		if f == nil || !f.typ {
			t.Fatalf("sample %q has no preceding HELP/TYPE header", line)
		}
		f.samples++
		if strings.HasSuffix(name, "_bucket") && base != name {
			bucketsOf[base] = append(bucketsOf[base], val)
		}
		if strings.HasSuffix(name, "_count") && base != name {
			countOf[base] = val
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// Families with headers and zero samples are legal (a labeled vector
	// with no live series yet, e.g. the per-view R̂ gauge between queries).
	if len(bucketsOf) == 0 {
		t.Fatal("no histogram families found")
	}
	for name, buckets := range bucketsOf {
		for i := 1; i < len(buckets); i++ {
			if buckets[i] < buckets[i-1] {
				t.Errorf("%s buckets not cumulative: %v", name, buckets)
				break
			}
		}
		if inf := buckets[len(buckets)-1]; inf != countOf[name] {
			t.Errorf("%s +Inf bucket %v != count %v", name, inf, countOf[name])
		}
	}
	if bucketsOf["factordb_query_seconds"] == nil {
		t.Error("factordb_query_seconds did not render as a histogram")
	}
}

// TestHealthzChainHealthFields pins the health endpoint's schema: the
// write epoch and the chain-health summary fields must be present.
func TestHealthzChainHealthFields(t *testing.T) {
	db := sharedDB(t, ModeServed)
	srv := httptest.NewServer(db.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"status", "mode", "chains", "epoch", "write_epoch", "uptime_s", "acceptance_rate", "shared_views"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("healthz is missing %q (have %v)", key, raw)
		}
	}
	var rate float64
	if err := json.Unmarshal(raw["acceptance_rate"], &rate); err != nil {
		t.Fatal(err)
	}
	if rate < 0 || rate > 1 {
		t.Errorf("acceptance_rate = %v, want [0,1]", rate)
	}
}

// TestStatusz pins the introspection endpoint: chain pool with sampler
// health, and a live view with refcount and fingerprint while a query is
// in flight.
func TestStatusz(t *testing.T) {
	db := sharedDB(t, ModeServed)
	srv := httptest.NewServer(db.Handler())
	defer srv.Close()

	// Hold a view live while we scrape: a background query with a large
	// uncached budget.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hold := make(chan struct{})
	go func() {
		defer close(hold)
		rows, err := db.Query(ctx, Query1, Samples(1<<20), NoCache(), AllowPartial())
		if err == nil {
			rows.Close()
		}
	}()

	var st Status
	deadline := 400
	for ; deadline > 0; deadline-- {
		resp, err := http.Get(srv.URL + "/statusz")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(st.Views) > 0 {
			break
		}
	}
	cancel()
	<-hold
	if st.Mode != "served" || st.Chains != 2 || len(st.Pool) != 2 {
		t.Fatalf("statusz = %+v, want served mode with 2 chains", st)
	}
	if len(st.Views) == 0 {
		t.Fatal("statusz never listed the in-flight view")
	}
	v := st.Views[0]
	if !strings.HasPrefix(v.Fingerprint, "bfp1:") {
		t.Errorf("view fingerprint %q lacks the bound-plan prefix", v.Fingerprint)
	}
	if v.Subscribers < 1 {
		t.Errorf("live view reports %d subscribers", v.Subscribers)
	}
	if st.Cache.Capacity == 0 {
		t.Errorf("statusz cache capacity = 0, want the configured default")
	}
}

// TestDebugEndpointsGated pins the split: the public Handler must not
// expose pprof or the trace ring; DebugHandler serves both.
func TestDebugEndpointsGated(t *testing.T) {
	db := sharedDB(t, ModeServed)
	pub := httptest.NewServer(db.Handler())
	defer pub.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/traces"} {
		resp, err := http.Get(pub.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("public handler serves %s with status %d, want 404", path, resp.StatusCode)
		}
	}

	dbg := httptest.NewServer(db.DebugHandler())
	defer dbg.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/traces"} {
		resp, err := http.Get(dbg.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("debug handler: GET %s status %d, want 200", path, resp.StatusCode)
		}
	}

	// /debug/traces returns a JSON array of traces after a traced query.
	rows, err := db.Query(context.Background(), Query1, Samples(4), NoCache(), Trace())
	if err != nil {
		t.Fatal(err)
	}
	rows.Close()
	resp, err := http.Get(dbg.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var traces []*QueryTrace
	if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) == 0 {
		t.Fatal("debug ring is empty after a traced query")
	}
	if traces[0].Outcome == "" || len(traces[0].Spans) == 0 {
		t.Fatalf("ring trace is malformed: %+v", traces[0])
	}
}

// TestQueryTraceFacade pins Rows.Trace across modes and the HTTP trace
// opt-in: spans are contiguous and tile the wall time in both the served
// engine and the local evaluator.
func TestQueryTraceFacade(t *testing.T) {
	checkTrace := func(t *testing.T, tr *QueryTrace, wantSpans []string) {
		t.Helper()
		if tr == nil {
			t.Fatal("traced query returned no trace")
		}
		have := map[string]bool{}
		var sum int64
		for i, s := range tr.Spans {
			have[s.Name] = true
			if i > 0 {
				prev := tr.Spans[i-1]
				if s.StartNS != prev.StartNS+prev.DurNS {
					t.Fatalf("span %q starts at %d, previous ended at %d", s.Name, s.StartNS, prev.StartNS+prev.DurNS)
				}
			}
			sum += s.DurNS
		}
		if got := sum + tr.Spans[0].StartNS; got != tr.WallNS {
			t.Fatalf("spans tile %dns of %dns wall time", got, tr.WallNS)
		}
		for _, name := range wantSpans {
			if !have[name] {
				t.Errorf("trace is missing span %q (have %+v)", name, tr.Spans)
			}
		}
	}

	t.Run("served", func(t *testing.T) {
		db := sharedDB(t, ModeServed)
		rows, err := db.Query(context.Background(), Query1, Samples(4), NoCache(), Trace())
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		checkTrace(t, rows.Trace(), []string{"compile", "register", "sample_wait", "snapshot_merge", "rank"})
	})
	t.Run("local", func(t *testing.T) {
		db := sharedDB(t, ModeMaterialized)
		rows, err := db.Query(context.Background(), Query1, Samples(4), Trace())
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		tr := rows.Trace()
		checkTrace(t, tr, []string{"compile", "clone_world", "sample", "rank"})
		if tr.Outcome != "ok" {
			t.Errorf("local trace outcome %q", tr.Outcome)
		}
		if !strings.HasPrefix(tr.Plan, "qfp1:") {
			t.Errorf("local trace fingerprint %q lacks the canonical-plan prefix", tr.Plan)
		}
		found := false
		for _, rt := range db.RecentTraces() {
			if rt.ID == tr.ID {
				found = true
			}
		}
		if !found {
			t.Error("local trace did not land in RecentTraces")
		}
	})
	t.Run("untracedIsNil", func(t *testing.T) {
		db := sharedDB(t, ModeMaterialized)
		rows, err := db.Query(context.Background(), Query1, Samples(2))
		if err != nil {
			t.Fatal(err)
		}
		defer rows.Close()
		if rows.Trace() != nil {
			t.Fatal("untraced query carries a trace")
		}
	})
	t.Run("http", func(t *testing.T) {
		db := sharedDB(t, ModeServed)
		srv := httptest.NewServer(db.Handler())
		defer srv.Close()
		body := `{"sql": "SELECT STRING FROM TOKEN WHERE LABEL='B-PER'", "samples": 4, "no_cache": true, "trace": true}`
		resp, err := http.Post(srv.URL+"/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var qr struct {
			Trace *QueryTrace `json:"trace"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
		if qr.Trace == nil || len(qr.Trace.Spans) == 0 {
			t.Fatalf("HTTP trace block missing: %+v", qr.Trace)
		}
	})
}
