// Package factordb reproduces and extends "Scalable Probabilistic
// Databases with Factor Graphs and MCMC" (Wick, McCallum, Miklau;
// PVLDB 2010, arXiv:1005.1934): a probabilistic database whose relational
// store always holds a single possible world, with uncertainty encoded by
// an external factor graph and recovered through Metropolis-Hastings
// sampling. Query answers are maintained incrementally across sampled
// worlds with materialized-view maintenance, which is orders of magnitude
// faster than re-running queries per world.
//
// # Public API
//
// The package root is the facade every caller programs against. Open a
// workload model under an evaluation strategy, pose SQL, and stream
// answer tuples with their marginal probabilities and confidence
// intervals:
//
//	db, err := factordb.Open(
//	    factordb.NER(factordb.NERConfig{Tokens: 20000}),
//	    factordb.WithMode(factordb.ModeMaterialized),
//	)
//	...
//	rows, err := db.Query(ctx, factordb.Query1)
//	...
//	for rows.Next() {
//	    var s string
//	    rows.Scan(&s)
//	    lo, hi := rows.CI()
//	    fmt.Println(s, rows.Prob(), lo, hi)
//	}
//
// Models: NER (the paper's skip-chain named-entity workload) and Coref
// (entity resolution). Modes: ModeNaive re-runs the query per sample
// (Algorithm 3), ModeMaterialized maintains the answer incrementally
// from the sampler's deltas (Algorithm 1, the paper's central result),
// and ModeServed runs a pool of parallel MCMC chains whose walk-steps
// are shared by all in-flight queries. One engine, one API, three
// strategies — the paper's equivalence made a contract: every mode
// estimates the same answer distribution.
//
// The SQL dialect covers the paper's evaluation queries and ranked
// retrieval: SELECT [DISTINCT] with comparisons, joins (comma or
// JOIN ... ON — pure syntax, both lower to the same plan), IN lists,
// IN/EXISTS subquery predicates and correlated COUNT(*)-subquery
// equalities in WHERE; COUNT/SUM/AVG/MIN/MAX with GROUP BY and HAVING;
// ORDER BY / LIMIT; INSERT/UPDATE/DELETE; ? placeholders; and EXPLAIN.
// The pseudo-column P names a tuple's estimated marginal probability,
// so MystiQ-style top-k is first-class SQL:
//
//	rows, err := db.Query(ctx, factordb.Query4Ranked) // ... ORDER BY P DESC LIMIT 10
//
// Ranking happens inside the engine: results arrive ordered and
// truncated, and the served mode stops refining tuples that can no
// longer enter the top k once the confidence intervals separate.
// ORDER BY over ordinary columns with a LIMIT instead ranks inside
// every sampled world (maintained incrementally), making a tuple's
// marginal its probability of ranking in the top k of a possible world.
//
// The sibling package factordb/sqldriver registers the same facade with
// database/sql under the driver name "factordb":
//
//	db, err := sql.Open("factordb", "ner?tokens=20000&mode=materialized&samples=100")
//	rows, err := db.QueryContext(ctx, "SELECT STRING FROM TOKEN WHERE LABEL='B-PER'")
//
// with the tuple marginal and confidence interval surfaced as trailing
// P, CI_LO and CI_HI columns.
//
// DB.Handler exposes the HTTP transport (POST /query, POST /exec,
// GET /healthz, GET /metrics, GET /statusz) that cmd/factordbd serves.
// DB.DebugHandler serves the operator-only endpoints (net/http/pprof and
// GET /debug/traces); they are never mounted on the public handler.
//
// # Observability: traces and sampler health
//
// Every query can carry a trace: request it per query with the Trace
// option (or "trace": true over HTTP), or sample every n-th query into a
// ring with WithTraceSampling. Read it from Rows.Trace, the "trace"
// block of the /query response, DB.RecentTraces, or GET /debug/traces.
//
// The trace contract: a QueryTrace's spans are contiguous — each span's
// StartNS equals the previous span's StartNS+DurNS, and the span
// durations plus the first span's lead-in sum exactly to WallNS, so no
// latency is unaccounted for. Span names are stable identifiers:
// the served engine emits "compile", "cache_probe", "admission_wait",
// "register", "sample_wait", "snapshot_merge" and "rank"; the local
// modes emit "compile", "clone_world", "sample" and "rank". New spans
// may be added in later releases (always preserving contiguity), and a
// span whose stage was skipped (e.g. cache_probe under NoCache) is
// omitted rather than emitted with zero duration; consumers must key on
// span names, not positions. Outcome is one of "ok", "cached",
// "early_stop", "partial" or "error". Tracing disabled costs
// single-digit nanoseconds per query (BenchmarkTraceOverhead pins it).
//
// Writes trace under the same contract (ExecTrace, "trace": true on
// POST /exec). Kind distinguishes the families sharing the ring:
// "query", "exec", and the one-shot "recovery" startup trace. A served
// write's spans are "compile", "admission_wait", "resolve",
// "wal_append", "fsync" (carved out of the append once the WAL sink
// reports its sync share), "fanout", then "burn_in", "delta_fold" and
// "republish" clocked by the slowest chain, and "cache_invalidate"; a
// durable local write emits "compile", "resolve", "wal_append", "fsync"
// and "apply". Exec outcomes are "ok", "noop" (matched no rows, nothing
// committed), "rejected", "canceled" or "error". With WithDataDir, the
// recovery performed at Open is published as Status.StartupTrace —
// "snapshot_load", "wal_replay" (attrs replayed_records, replayed_ops,
// epoch) and, after a crash, "torn_tail_truncate".
//
// Every trace carries a TraceID: the 32-hex trace-id of a W3C
// traceparent, either propagated by the caller (TraceID/ExecTraceID
// options; the HTTP transport reads the request's traceparent header and
// echoes the resolved ID on the response) or assigned by the database.
//
// # Structured logging
//
// WithLogger installs a log/slog logger for the operational record
// streams; record shapes are a stable contract. WithSlowQueryLog arms
// the slow-query log: any query or write at or over the threshold emits
// a "slow_query" record — trace_id, kind, sql, fingerprint, outcome,
// wall_ns, threshold_ns, and a span_ns group with durations summed per
// span name — and its trace is kept in the ring so the trace_id resolves
// on GET /debug/traces even when the client never opted into tracing.
// Every Exec attempt additionally emits a "write.audit" record (outcome,
// sql, epoch, rows_affected, and trace_id when traced); failures audit
// at Warn, commits at Info. cmd/factordbd wires both through its
// -log-format, -log-level and -slow-query flags, and
// cmd/factorload -check-slow-log validates a captured JSON log against
// this contract.
//
// EXPLAIN ANALYZE SELECT executes the pushed-down streaming plan once
// per chain with per-operator instrumentation and returns the annotated
// tree (actual vs estimated rows, per-operator self time, pushdown
// residue) as PLAN rows, like EXPLAIN. DML cannot be analyzed — a write
// cannot be executed speculatively. The uninstrumented path stays within
// 2% of its cost (TestAnalyzeDisabledOverhead gates it in CI).
//
// Sampler health is exported alongside: per-chain acceptance rate and
// steps/sec, and — per live shared view — the cross-chain split-R̂ and
// effective sample size of the view's answer-cardinality stream, on
// GET /metrics (factordb_chain_*, factordb_view_rhat, factordb_view_ess)
// and GET /statusz. cmd/factorload replays a mixed workload and records
// these into a BENCH_<name>.json trajectory.
//
// # Write path: DML and the data epoch
//
// The database is writable through DB.Exec, database/sql's ExecContext,
// and POST /exec — the paper's update model made operational. Because
// the store holds a single possible world, a write is a plain mutation
// of that world: the samplers keep walking and the marginals
// re-equilibrate, with none of the lineage recomputation tuple-level
// probabilistic databases pay on update. The DML grammar (literals only
// on the write path; WHERE is a conjunction of simple comparisons):
//
//	INSERT INTO t [(col, ...)] VALUES (lit, ...) [, (lit, ...)]...
//	UPDATE t [alias] SET col = lit [, col = lit]... [WHERE cond AND ...]
//	DELETE FROM t [alias] [WHERE cond AND ...]
//
// An INSERT column list must cover the whole schema (the store has no
// defaults). The durable write workload is evidence: assignments to a
// hidden (sampled) column are overwritten as the sampler revisits it,
// and rows inserted into a sampled relation carry their hidden field as
// fixed evidence. UPDATE/DELETE predicates are resolved once against one
// world and the resulting row-level ops are replayed on every chain, so
// the chains' worlds never diverge.
//
// The data-epoch contract sits next to the plan-IR contract above: every
// committed write bumps the database's data epoch (ExecResult.Epoch,
// DB.WriteEpoch, the factordb_write_epoch gauge, /healthz write_epoch),
// and the served-mode result cache keys on (data epoch, plan
// fingerprint, result spec, samples, confidence). A cached answer
// therefore can never survive a write — whatever spelling of the query
// produced it — while spelling variants keep sharing entries within an
// epoch.
//
// Below the result cache sits the raw-SQL plan cache: Compile results
// keyed on the exact statement bytes. The keying rule is deliberate —
// no normalization of any kind, so two spellings that differ by one
// whitespace byte occupy two entries, and a repeated spelling skips
// lexing, parsing and planning outright. Plans are immutable and hold
// no data references, so the plan cache needs no epoch invalidation:
// entries are evicted FIFO (WithPlanCache sizes the cache), and
// statements that fail to compile are never cached. Prepare keeps a
// parsed AST instead: Stmt.Query/Exec bind ? arguments as literals
// into a fresh copy and re-plan, which re-runs canonicalization, so a
// bound statement fingerprints — and caches — identically to the same
// statement with its literals spelled inline.
//
// # EXPLAIN
//
// EXPLAIN <stmt> compiles its target through the shared plan cache
// exactly as if the statement had been issued directly (an EXPLAIN
// warms the cache for the real query) and answers without sampling.
// The contract, identical through the facade, database/sql, POST
// /query and the CLI: a single PLAN column of strings, one plan line
// per row — the rendered operator tree, the plan fingerprint, the
// result spec, and whether the plan cache already held the entry. Chains absorb a write at an epoch boundary, walk a configurable
// burn-in, and reset the estimators of live views; a query in flight
// across a write re-collects rather than blend pre- and post-write
// samples, and queries issued after Exec returns never observe
// pre-write state.
//
// # Durability: snapshots, the WAL, and recovery
//
// WithDataDir(dir) makes the write path durable (cmd/factordbd:
// -data-dir). The store persists exactly the evidence — the prototype
// possible world and committed mutations — because everything else
// (graph, weights, chains) is a deterministic function of the workload
// config and is rebuilt on open. Two on-disk artifacts live in dir:
//
//   - snap-<epoch>.snap: a checkpoint of the world as of a data epoch.
//     Format "snap1:": magic, big-endian epoch, gob world dump, CRC-32
//     trailer; written to a temp file and atomically renamed.
//   - wal.log: an append-only log of committed op batches. Format
//     "wal1:": magic, then length-prefixed records (u32 length, u32
//     CRC-32 (IEEE), payload of epoch + resolved row-level ops). Both
//     prefixes are versioned; incompatible changes bump them, so an old
//     binary refuses a new directory rather than misreading it.
//
// The commit rule: Exec appends the batch to the WAL (honoring the
// fsync policy — FsyncAlways syncs per append, FsyncInterval (default)
// syncs on a ~100ms background ticker, FsyncNever leaves it to the OS)
// before any chain applies it. Recovery loads the newest valid snapshot
// and replays only records with epoch greater than the snapshot epoch —
// replay is idempotent by construction because ops are row-level
// assignments keyed by epoch, never read-modify-write. The first
// invalid record (torn frame, short payload, CRC mismatch) ends the
// log: the tail beyond it is truncated, reported as torn_tail in
// DurabilityStatus, and never replayed. Background checkpointing
// (WithCheckpointEvery) rewrites the snapshot and drops the covered WAL
// prefix. After recovery the restored write epoch is observable at
// DB.WriteEpoch and /healthz write_epoch, and a served engine walks a
// burn-in before answering so marginals re-equilibrate around the
// recovered evidence. Coref materializes worlds per chain and has no
// durable prototype world; WithDataDir on it fails with ErrRecovery.
//
// # Plan IR: canonical form and fingerprints
//
// Every query, whatever its entry path (DB.Query, database/sql, HTTP),
// lowers to the same canonical relational-algebra plan: the sqlparse
// planner runs ra.Canonicalize on its output, which renames table
// aliases positionally (and drops provably redundant qualifiers in
// single-table plans), flattens and sorts AND/OR conjunctions, orients
// comparisons (literals on the right), folds constant subexpressions,
// and drops TRUE selections — without ever changing answer semantics or
// output column names. Spelling variants of one query (whitespace,
// keyword case, alias names, predicate order, flipped comparisons) are
// therefore one plan.
//
// Two fingerprints key the layers above:
//
//   - ra.PlanFingerprint (prefix "qfp1:") hashes the canonical logical
//     plan. The served-mode result cache keys on (plan fingerprint,
//     result spec, samples, confidence) instead of the SQL text, so
//     textual variants share one cache entry.
//   - ra.Bound.Fingerprint (prefix "bfp1:") hashes the catalog-bound
//     structure of every plan subtree — column positions rather than
//     names, no aliases, no output names. The serving engine's per-chain
//     view registries key physical materialized views on it: concurrent
//     queries with equal plans share one incrementally maintained view
//     per chain (refcounted, maintained once per walk batch regardless
//     of subscriber count), and plans that merely overlap share the
//     delta operators of their common subtrees. Per-query options that
//     do not change the answer distribution — sample budget, confidence
//     level — are deliberately excluded from view identity and applied
//     at estimator-merge time.
//
// Stability: within one version prefix the encodings never change across
// releases; incompatible changes bump the prefix ("qfp2:", "bfp2:"), so
// stale keys miss rather than collide. The golden test
// internal/sqlparse/testdata/fingerprints.golden pins the fingerprints
// of the paper's queries to enforce this.
//
// # Execution: the streaming iterator contract
//
// Bound plans execute through ra.Stream, which compiles the tree (after
// non-mutating predicate pushdown) into a single re-runnable iterator:
// a closure that pushes (tuple, count) pairs to a yield callback. The
// contract every operator and consumer observes:
//
//   - Compile once, run many: invoking the iterator re-evaluates the
//     plan against the current world. All per-run state lives inside
//     the invocation, so one compiled pipeline serves every MCMC
//     sample.
//   - Ownership: Stream reports whether yielded tuples are owned
//     (stable — safe to retain) or scratch buffers invalid after the
//     yield returns. Retaining consumers must clone unowned tuples;
//     they need to do so only on first insertion.
//   - A yield may be called several times for one logical tuple
//     (streams are bags, split emissions are legal); consumers fold
//     counts. Returning false from yield stops the run early, and the
//     iterator remains reusable afterwards.
//
// The incremental-maintenance layer (internal/ivm) uses the same shape
// in push form — delta operators emit signed (tuple, count) pairs
// downstream — and the same ownership rule, so eval and maintenance
// share key encodings and allocation discipline.
//
// # Internals
//
// The internal packages layer from model to server:
//
//	internal/factor    factor-graph templates and log-linear scoring
//	internal/mcmc      Metropolis-Hastings walk over possible worlds
//	internal/learn     SampleRank parameter estimation
//	internal/ie        skip-chain NER model, corpus generator, proposer
//	internal/coref     entity-resolution model (second workload)
//	internal/relstore  the single-world relational store
//	internal/ra        relational algebra: plans, binding, evaluation
//	internal/sqlparse  SQL front end lowering to ra plans
//	internal/ivm       incremental view maintenance over Δ⁻/Δ⁺ deltas
//	internal/world     change log, epochs, snapshot publication
//	internal/store     durable storage: snapshots + WAL, crash recovery
//	internal/core      query evaluators (naive and materialized) + estimator
//	internal/metrics   loss traces and serving counters
//	internal/exp       experiment harness regenerating the paper's figures
//	internal/serve     concurrent query-serving engine (ModeServed)
//
// Three commands sit on top of the facade: cmd/factordb evaluates a
// single query from the command line, cmd/factordbd serves concurrent
// SQL queries over HTTP, and cmd/experiments regenerates the paper's
// evaluation through the internal harness.
//
// See README.md for the architecture tour and server usage, and the
// examples/ directory for runnable entry points.
package factordb
