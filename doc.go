// Package factordb reproduces and extends "Scalable Probabilistic
// Databases with Factor Graphs and MCMC" (Wick, McCallum, Miklau;
// PVLDB 2010, arXiv:1005.1934): a probabilistic database whose relational
// store always holds a single possible world, with uncertainty encoded by
// an external factor graph and recovered through Metropolis-Hastings
// sampling. Query answers are maintained incrementally across sampled
// worlds with materialized-view maintenance, which is orders of magnitude
// faster than re-running queries per world.
//
// # Public API
//
// The package root is the facade every caller programs against. Open a
// workload model under an evaluation strategy, pose SQL, and stream
// answer tuples with their marginal probabilities and confidence
// intervals:
//
//	db, err := factordb.Open(
//	    factordb.NER(factordb.NERConfig{Tokens: 20000}),
//	    factordb.WithMode(factordb.ModeMaterialized),
//	)
//	...
//	rows, err := db.Query(ctx, factordb.Query1)
//	...
//	for rows.Next() {
//	    var s string
//	    rows.Scan(&s)
//	    lo, hi := rows.CI()
//	    fmt.Println(s, rows.Prob(), lo, hi)
//	}
//
// Models: NER (the paper's skip-chain named-entity workload) and Coref
// (entity resolution). Modes: ModeNaive re-runs the query per sample
// (Algorithm 3), ModeMaterialized maintains the answer incrementally
// from the sampler's deltas (Algorithm 1, the paper's central result),
// and ModeServed runs a pool of parallel MCMC chains whose walk-steps
// are shared by all in-flight queries. One engine, one API, three
// strategies — the paper's equivalence made a contract: every mode
// estimates the same answer distribution.
//
// The SQL dialect covers the paper's evaluation queries and ranked
// retrieval: SELECT [DISTINCT] with comparisons, joins and correlated
// COUNT(*)-subquery equalities in WHERE; COUNT/SUM/AVG/MIN/MAX with
// GROUP BY and HAVING; and ORDER BY / LIMIT. The pseudo-column P names
// a tuple's estimated marginal probability, so MystiQ-style top-k is
// first-class SQL:
//
//	rows, err := db.Query(ctx, factordb.Query4Ranked) // ... ORDER BY P DESC LIMIT 10
//
// Ranking happens inside the engine: results arrive ordered and
// truncated, and the served mode stops refining tuples that can no
// longer enter the top k once the confidence intervals separate.
// ORDER BY over ordinary columns with a LIMIT instead ranks inside
// every sampled world (maintained incrementally), making a tuple's
// marginal its probability of ranking in the top k of a possible world.
//
// The sibling package factordb/sqldriver registers the same facade with
// database/sql under the driver name "factordb":
//
//	db, err := sql.Open("factordb", "ner?tokens=20000&mode=materialized&samples=100")
//	rows, err := db.QueryContext(ctx, "SELECT STRING FROM TOKEN WHERE LABEL='B-PER'")
//
// with the tuple marginal and confidence interval surfaced as trailing
// P, CI_LO and CI_HI columns.
//
// DB.Handler exposes the HTTP transport (POST /query, GET /healthz,
// GET /metrics) that cmd/factordbd serves.
//
// # Internals
//
// The internal packages layer from model to server:
//
//	internal/factor    factor-graph templates and log-linear scoring
//	internal/mcmc      Metropolis-Hastings walk over possible worlds
//	internal/learn     SampleRank parameter estimation
//	internal/ie        skip-chain NER model, corpus generator, proposer
//	internal/coref     entity-resolution model (second workload)
//	internal/relstore  the single-world relational store
//	internal/ra        relational algebra: plans, binding, evaluation
//	internal/sqlparse  SQL front end lowering to ra plans
//	internal/ivm       incremental view maintenance over Δ⁻/Δ⁺ deltas
//	internal/world     change log, epochs, snapshot publication
//	internal/core      query evaluators (naive and materialized) + estimator
//	internal/metrics   loss traces and serving counters
//	internal/exp       experiment harness regenerating the paper's figures
//	internal/serve     concurrent query-serving engine (ModeServed)
//
// Three commands sit on top of the facade: cmd/factordb evaluates a
// single query from the command line, cmd/factordbd serves concurrent
// SQL queries over HTTP, and cmd/experiments regenerates the paper's
// evaluation through the internal harness.
//
// See README.md for the architecture tour and server usage, and the
// examples/ directory for runnable entry points.
package factordb
