// Package factordb is a reproduction of "Scalable Probabilistic Databases
// with Factor Graphs and MCMC" (Wick, McCallum, Miklau; arXiv:1005.1934,
// 2010): a probabilistic database whose underlying relational store always
// holds a single possible world, with uncertainty encoded by an external
// factor graph and recovered through Metropolis-Hastings sampling. Query
// answers are maintained incrementally across sampled worlds with
// materialized-view maintenance, which is orders of magnitude faster than
// re-running queries per world.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the
// paper-versus-measured record, and the examples/ directory for runnable
// entry points.
package factordb
