// Package factordb reproduces and extends "Scalable Probabilistic
// Databases with Factor Graphs and MCMC" (Wick, McCallum, Miklau;
// PVLDB 2010, arXiv:1005.1934): a probabilistic database whose relational
// store always holds a single possible world, with uncertainty encoded by
// an external factor graph and recovered through Metropolis-Hastings
// sampling. Query answers are maintained incrementally across sampled
// worlds with materialized-view maintenance, which is orders of magnitude
// faster than re-running queries per world.
//
// The packages layer from model to server:
//
//	internal/factor    factor-graph templates and log-linear scoring
//	internal/mcmc      Metropolis-Hastings walk over possible worlds
//	internal/learn     SampleRank parameter estimation
//	internal/ie        skip-chain NER model, corpus generator, proposer
//	internal/coref     entity-resolution model (second workload)
//	internal/relstore  the single-world relational store
//	internal/ra        relational algebra: plans, binding, evaluation
//	internal/sqlparse  SQL front end lowering to ra plans
//	internal/ivm       incremental view maintenance over Δ⁻/Δ⁺ deltas
//	internal/world     change log, epochs, snapshot publication
//	internal/core      query evaluators (naive and materialized) + estimator
//	internal/metrics   loss traces and serving counters
//	internal/exp       experiment harness regenerating the paper's figures
//	internal/serve     concurrent query-serving engine (factordbd)
//
// Three commands sit on top: cmd/factordb evaluates a single query from
// the command line, cmd/experiments regenerates the paper's evaluation,
// and cmd/factordbd serves concurrent SQL queries over HTTP from a pool
// of parallel MCMC chains that share their walk-steps across all
// in-flight queries.
//
// See README.md for the architecture tour and server usage, and the
// examples/ directory for runnable entry points.
package factordb
