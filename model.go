package factordb

import (
	"fmt"

	"factordb/internal/exp"
	"factordb/internal/ie"
	"factordb/internal/mcmc"
	"factordb/internal/ra"
	"factordb/internal/relstore"
	"factordb/internal/world"
)

// Model describes a probabilistic-database workload: a factor-graph model
// over a relational schema, from which independent possible-world chains
// are stocked. Build one with NER or Coref and hand it to Open; the
// interface is sealed (its methods are unexported) so the engine can
// evolve the chain-world contract without breaking callers.
type Model interface {
	// modelName is the short workload name ("ner", "coref"), used in
	// diagnostics and as the database/sql DSN prefix.
	modelName() string
	// build trains the model and returns the chain-world factory. Called
	// exactly once, by Open; expect it to be expensive (corpus generation
	// plus SampleRank training for the NER workload).
	build() (system, error)
}

// system is the built form of a Model: a one-line description plus the
// chain-world factory shared by every evaluation strategy (the serving
// engine consumes it directly as its serve.Source).
type system interface {
	Describe() string
	NewChainWorld(chain int) (*world.ChangeLog, mcmc.Proposer, error)
}

// NERConfig parameterizes the paper's named-entity-recognition workload:
// a synthetic news corpus, a skip-chain CRF trained with SampleRank, and
// a TOKEN(DOC_ID, POS, STRING, LABEL) relation whose LABEL column is the
// uncertain field. The zero value gives a 20 000-token corpus with skip
// factors at seed 1.
type NERConfig struct {
	// Tokens is the corpus size in tokens (default 20 000).
	Tokens int
	// Seed drives corpus generation and training (default 1).
	Seed int64
	// TrainSteps overrides the SampleRank step heuristic (0 = auto).
	TrainSteps int
	// TokensPerDoc overrides the generator's document length (0 = auto).
	TokensPerDoc int
	// Temperature divides the trained weights (0 = package default);
	// higher keeps marginals soft and chains mixing.
	Temperature float64
	// LinearChain disables the skip-chain factors.
	LinearChain bool
	// TargetSubstring, when non-empty, restricts MCMC proposals to
	// documents containing the substring — the query-targeted proposal
	// distribution the paper suggests as future work. Build fails if no
	// document matches.
	TargetSubstring string
}

// NER returns the named-entity-recognition workload model.
func NER(cfg NERConfig) Model { return nerModel{cfg} }

type nerModel struct{ cfg NERConfig }

func (nerModel) modelName() string { return "ner" }

func (m nerModel) build() (system, error) {
	cfg := m.cfg
	if cfg.Tokens <= 0 {
		cfg.Tokens = 20000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	sys, err := exp.BuildNER(exp.Config{
		NumTokens:    cfg.Tokens,
		Seed:         cfg.Seed,
		TrainSteps:   cfg.TrainSteps,
		UseSkip:      !cfg.LinearChain,
		TokensPerDoc: cfg.TokensPerDoc,
		Temperature:  cfg.Temperature,
	})
	if err != nil {
		return nil, err
	}
	if cfg.TargetSubstring == "" {
		return sys, nil
	}
	docs := ie.DocsContaining(sys.Corpus, cfg.TargetSubstring)
	if len(docs) == 0 {
		return nil, fmt.Errorf("factordb: no document contains %q at this corpus seed", cfg.TargetSubstring)
	}
	return &targetedNER{sys: sys, docs: docs}, nil
}

// targetedNER restricts every chain's proposal distribution to the
// matched documents before handing the world out.
type targetedNER struct {
	sys  *exp.NERSystem
	docs []int
}

func (t *targetedNER) Describe() string {
	return fmt.Sprintf("%s, proposals targeted to %d docs", t.sys.Describe(), len(t.docs))
}

func (t *targetedNER) NewChainWorld(chain int) (*world.ChangeLog, mcmc.Proposer, error) {
	log, tg, err := t.sys.NewChainTagger(chain)
	if err != nil {
		return nil, nil, err
	}
	if err := tg.TargetDocs(t.docs); err != nil {
		return nil, nil, err
	}
	return log, tg, nil
}

// Exec forwards local-mode writes to the underlying prototype world;
// proposal targeting only shapes the walk, not the write path. The
// resolve/apply split and the world accessors forward likewise, so a
// targeted NER database is just as durable as a plain one.
func (t *targetedNER) Exec(mut ra.Mutation) (int64, error) { return t.sys.Exec(mut) }

func (t *targetedNER) ResolveExec(mut ra.Mutation) ([]world.Op, error) {
	return t.sys.ResolveExec(mut)
}
func (t *targetedNER) ApplyExecOps(ops []world.Op) (int64, error) { return t.sys.ApplyExecOps(ops) }
func (t *targetedNER) WorldDB() *relstore.DB                      { return t.sys.WorldDB() }
func (t *targetedNER) RestoreWorld(db *relstore.DB)               { t.sys.RestoreWorld(db) }

// CorefConfig parameterizes the entity-resolution workload: generated
// mention strings clustered by MCMC over a pairwise-cohesion model, with
// the clustering written through to MENTION(MENTION_ID, STRING, CLUSTER).
// The zero value gives 6 entities with 4 mentions each at seed 0.
type CorefConfig struct {
	// Entities is the number of gold entities (default 6).
	Entities int
	// MentionsPerEntity is the mentions generated per entity (default 4).
	MentionsPerEntity int
	// Seed drives mention generation.
	Seed int64
}

// Coref returns the entity-resolution workload model.
func Coref(cfg CorefConfig) Model { return corefModel{cfg} }

type corefModel struct{ cfg CorefConfig }

func (corefModel) modelName() string { return "coref" }

func (m corefModel) build() (system, error) {
	return exp.BuildCoref(exp.CorefConfig{
		NumEntities:       m.cfg.Entities,
		MentionsPerEntity: m.cfg.MentionsPerEntity,
		Seed:              m.cfg.Seed,
	})
}
