package factordb

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"factordb/internal/ra"
	"factordb/internal/serve"
	"factordb/internal/world"
)

// ErrReadOnly is returned by Exec when the opened workload cannot absorb
// writes under the current mode. The local modes (naive, materialized)
// need a durable prototype world to mutate; a workload that materializes
// worlds per query — coref — only supports writes in served mode, where
// the chain worlds live for the engine's lifetime.
var ErrReadOnly = errors.New("factordb: workload is read-only under this mode")

// ExecResult reports one committed DML mutation.
type ExecResult struct {
	// RowsAffected counts the rows the mutation touched (rows inserted,
	// matched by UPDATE, or deleted).
	RowsAffected int64
	// Epoch is the data epoch after the commit: the number of writes the
	// database has absorbed. Every committed write bumps it, and the
	// served-mode result cache keys on it, so no answer cached before
	// this write can be served after it.
	Epoch int64
	// Chains is the number of possible-world copies the mutation was
	// applied to (the pool size in served mode, 1 otherwise).
	Chains int
	// Elapsed is the wall time to commit, including the post-write
	// burn-in on every chain in served mode.
	Elapsed time.Duration
	// Trace is the write's span breakdown — compile, resolve, WAL
	// append/fsync, chain fan-out phases — present only when the caller
	// opted in with ExecTrace (or, in served mode, the engine's trace
	// sampler picked the write).
	Trace *QueryTrace
}

// execOptions tunes one Exec; see the ExecOption constructors.
type execOptions struct {
	trace   bool
	traceID string
}

// ExecOption configures one DB.Exec call.
type ExecOption func(*execOptions)

// ExecTrace records a span breakdown of this write — compile, admission,
// resolve, WAL append and fsync, per-phase chain fan-out — returned in
// ExecResult.Trace and kept in the recent-traces ring behind
// GET /debug/traces.
func ExecTrace() ExecOption { return func(o *execOptions) { o.trace = true } }

// ExecTraceID propagates a caller-assigned correlation ID (the trace-id
// field of a W3C traceparent) into the write's trace and its write-audit
// record. The HTTP transport sets it from the request's traceparent
// header.
func ExecTraceID(id string) ExecOption { return func(o *execOptions) { o.traceID = id } }

// worldExecer is the optional system capability behind Exec in the local
// modes: a workload whose prototype world can absorb a resolved DML
// mutation durably (every later query clones the mutated world).
type worldExecer interface {
	Exec(mut ra.Mutation) (int64, error)
}

// Exec applies one DML statement — INSERT, UPDATE or DELETE — to the
// probabilistic database and returns once every possible-world copy has
// absorbed it. This is the paper's update model: the database is a single
// possible world plus a factor graph, so a write mutates the world in
// place and sampling simply continues — the marginals re-equilibrate with
// no lineage recomputation and no reopening.
//
//	UPDATE TOKEN SET STRING = 'Boston' WHERE TOK_ID = 4711
//	DELETE FROM TOKEN WHERE DOC_ID = 17
//	INSERT INTO TOKEN (TOK_ID, DOC_ID, STRING, LABEL, TRUTH) VALUES (...)
//
// In served mode the mutation is resolved once, applied to every chain's
// world at an epoch boundary, followed by a burn-in walk so snapshots are
// trusted again; in-flight queries restart their estimators and complete
// with post-write samples only, and all cached pre-write answers become
// unreachable (the data epoch is part of every cache key). Queries issued
// after Exec returns never observe pre-write state.
//
// In the local modes the prototype world is mutated under a write lock;
// every subsequent query clones the mutated world. Statements' WHERE
// clauses may reference any column, but the durable write workload is
// evidence: a hidden (sampled) column assignment is overwritten as the
// sampler revisits it.
func (db *DB) Exec(ctx context.Context, sql string, opts ...ExecOption) (*ExecResult, error) {
	if db.isClosed() {
		return nil, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var eo execOptions
	for _, f := range opts {
		f(&eo)
	}
	if db.eng != nil {
		res, err := db.eng.ExecTraced(ctx, sql, serve.ExecOptions{Trace: eo.trace, TraceID: eo.traceID})
		if err != nil {
			return nil, mapServeErr(err)
		}
		return &ExecResult{
			RowsAffected: res.RowsAffected,
			Epoch:        res.Epoch,
			Chains:       res.Chains,
			Elapsed:      res.Elapsed,
			Trace:        traceFromServe(res.Trace),
		}, nil
	}

	begin := time.Now()
	tr := db.newLocalExecTrace(sql, eo, begin)
	tr.span("compile")
	mut, hit, err := db.plans.CompileMutation(sql)
	if err != nil {
		db.countFailed()
		db.finishLocalExec(sql, nil, "error", tr, begin)
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	if hit {
		db.planHits.Inc()
		tr.attr("plan_cache", "hit")
	} else {
		tr.attr("plan_cache", "miss")
	}
	return db.execLocal(sql, mut, tr, begin)
}

// newLocalExecTrace decides tracing for one local write: client opt-in
// (publish), or an armed slow-query log that needs the span breakdown in
// case the write turns out slow (private). The write-audit log covers
// every exec regardless.
func (db *DB) newLocalExecTrace(sql string, eo execOptions, begin time.Time) *localTrace {
	publish := eo.trace
	if !publish && db.opts.slowQuery <= 0 {
		return nil
	}
	tr := newLocalTrace(db.traceID.Add(1), sql, begin)
	tr.publish = publish
	tr.qt.Kind = "exec"
	tr.qt.TraceID = eo.traceID
	if tr.qt.TraceID == "" {
		tr.qt.TraceID = db.genTraceID(tr.qt.ID)
	}
	return tr
}

// execLocal applies an already compiled mutation to the local prototype
// world — the tail of Exec, shared with the prepared-statement path. A
// traced write spans resolve / wal_append / fsync / apply contiguously;
// every write, traced or not, lands in the outcome-labeled latency
// histogram and the write-audit log.
func (db *DB) execLocal(sql string, mut ra.Mutation, tr *localTrace, begin time.Time) (res *ExecResult, err error) {
	outcome := "error"
	defer func() { db.finishLocalExec(sql, res, outcome, tr, begin) }()
	start := time.Now()
	ex, ok := db.sys.(worldExecer)
	if !ok {
		return nil, fmt.Errorf("%w: the %s workload has no durable local world (open it with WithMode(ModeServed))",
			ErrReadOnly, db.name)
	}
	// The write lock excludes queries mid-clone: local queries snapshot
	// the prototype world under the read side, so they see either all of
	// this mutation or none of it.
	db.writeMu.Lock()
	var n int64
	var epoch int64
	var walErr error
	if db.store != nil {
		// Durable path: resolve, log the resolved batch, then apply —
		// write-ahead order, same as the served engine. A WAL failure
		// vetoes the write with the world untouched.
		ox, isOps := db.sys.(worldOpsExecer)
		if !isOps {
			db.writeMu.Unlock()
			return nil, fmt.Errorf("%w: the %s workload cannot log resolved writes", ErrRecovery, db.name)
		}
		tr.span("resolve")
		var ops []world.Op
		ops, err = ox.ResolveExec(mut)
		epoch = db.writeEpoch.Load()
		if err == nil && len(ops) > 0 {
			tr.span("wal_append")
			if walErr = db.store.Append(epoch+1, ops); walErr == nil {
				var fsyncNS int64
				if fr, ok := db.store.(serve.FsyncReporter); ok {
					fsyncNS = fr.LastFsyncNS()
				}
				tr.splitTail("fsync", fsyncNS)
				tr.span("apply")
				n, err = ox.ApplyExecOps(ops)
				if err == nil {
					epoch = db.writeEpoch.Add(1)
				}
			}
		}
	} else {
		tr.span("apply")
		n, err = ex.Exec(mut)
		if err == nil {
			// Bump inside the critical section so the reported epoch matches
			// apply order under concurrent writers.
			epoch = db.writeEpoch.Load()
			if n > 0 { // a no-match mutation commits nothing
				epoch = db.writeEpoch.Add(1)
			}
		}
	}
	db.writeMu.Unlock()
	if walErr != nil {
		return nil, fmt.Errorf("%w: wal append: %v", ErrRecovery, walErr)
	}
	if err != nil {
		db.countFailed()
		return nil, fmt.Errorf("%w: %v", ErrBadQuery, err)
	}
	if n > 0 {
		db.writes.Inc()
		outcome = "ok"
	} else {
		outcome = "noop"
	}
	res = &ExecResult{
		RowsAffected: n,
		Epoch:        epoch,
		Chains:       1,
		Elapsed:      time.Since(start),
	}
	return res, nil
}

// mapServeErr rebrands the serving engine's sentinel errors onto the
// facade's error taxonomy, keeping the underlying compile/bind detail
// intact. Shared by the read (Query) and write (Exec) paths so the two
// can never drift apart.
func mapServeErr(err error) error {
	switch {
	case errors.Is(err, serve.ErrClosed):
		return ErrClosed
	case errors.Is(err, serve.ErrBadQuery):
		detail := strings.TrimPrefix(err.Error(), serve.ErrBadQuery.Error()+": ")
		return fmt.Errorf("%w: %s", ErrBadQuery, detail)
	case errors.Is(err, serve.ErrOverloaded):
		return ErrOverloaded
	}
	return err
}

// WriteEpoch returns the data epoch: the number of writes committed since
// Open. Served mode reports the engine's epoch (shared by all transports);
// local modes count facade Execs.
func (db *DB) WriteEpoch() int64 {
	if db.eng != nil {
		return db.eng.DataEpoch()
	}
	return db.writeEpoch.Load()
}
